#!/usr/bin/env bash
# Pre-merge check matrix for the HNS tree. Runs every correctness gate the
# local toolchain supports and prints a PASS/FAIL/SKIP summary:
#
#   default      build + full ctest (the tier-1 gate)
#   asan-ubsan   full ctest under -DHCS_SANITIZE=address,undefined
#   tsan         `ctest -L concurrency` under -DHCS_SANITIZE=thread
#   tsan-reactor same tsan build, rerun with HCS_REACTOR=1 so every
#                real-socket host serves on the shared epoll reactor
#   annotations  clang build with -DHCS_THREAD_SAFETY=ON (-Werror=thread-safety)
#   clang-tidy   .clang-tidy over src/ via the default compile database
#   lint-wire    tools/lint_wire.py encode/decode symmetry
#   lint-failpaths   tools/lint_failpaths.py error-discipline lint + self-test
#   lint-views   tools/lint_views.py view-escape lint + self-test
#   lint-loop    tools/lint_loop.py loop-affinity lint + self-test
#   views-asan   view_lifetime_test + fuzz_test under the asan-ubsan build in
#                both serve modes: the poisoned debug arena and generation
#                stamps made fatal (HCS_SANITIZE compiles them in)
#   decode-sweep-asan  decode_sweep_test alone under the asan-ubsan build:
#                the truncation/bit-flip sweep with over-reads made fatal
#   chaos-asan   `ctest -L chaos` under the asan-ubsan build: the seeded
#                fault-injection scenarios with memory errors made fatal
#   workload-asan  `ctest -L workload` under the asan-ubsan build at three
#                fixed seeds, HCS_WORKLOAD_POPULATION scaled to sanitizer
#                speed: the million-client engine's determinism claims with
#                memory errors made fatal
#   chaos-tsan   `ctest -L chaos` under the tsan build, in both serve modes
#                (plain, then HCS_REACTOR=1)
#   async-tsan   async_client_test under the tsan build in both serve
#                modes: the reactor-driven client engine's loop thread,
#                future completion, pipelining, and reap races
#   bench-smoke  tools/bench_snapshot.py --check over every checked-in
#                BENCH_*.json: schema + embedded trajectory floors (no
#                re-measurement; also runs as the bench_smoke ctest)
#
# Configurations whose toolchain is missing (no clang++, no clang-tidy) are
# SKIPped, not failed: the container bakes in GCC only; the clang gates run
# where clang exists (developer machines, CI images with clang).
#
# Usage: tools/check.sh [build-root]   (default: <repo>/check-builds)
#        tools/check.sh --lints        (quick mode: the four static lints and
#                                       their self-tests only — no compiles)

set -u

REPO="$(cd "$(dirname "$0")/.." && pwd)"
LINTS_ONLY=0
if [[ "${1:-}" == "--lints" ]]; then
  LINTS_ONLY=1
  shift
fi
BUILD_ROOT="${1:-${REPO}/check-builds}"
JOBS="$(nproc 2>/dev/null || echo 4)"

declare -a NAMES RESULTS
note() { printf '\n=== check.sh: %s ===\n' "$*"; }
record() { NAMES+=("$1"); RESULTS+=("$2"); }

run_lints() {
  # 6. Wire encode/decode symmetry lint (also runs as the lint_wire ctest).
  note "lint-wire: tools/lint_wire.py"
  if python3 "${REPO}/tools/lint_wire.py" "${REPO}"; then
    record lint-wire PASS
  else
    record lint-wire FAIL
  fi

  # 7. Failure-path discipline lint: tagged discards, decode-before-ok, RPC
  # handlers that swallow errors. The self-test proves every rule still fires.
  note "lint-failpaths: tools/lint_failpaths.py (+ --self-test)"
  if python3 "${REPO}/tools/lint_failpaths.py" --self-test &&
     python3 "${REPO}/tools/lint_failpaths.py" "${REPO}"; then
    record lint-failpaths PASS
  else
    record lint-failpaths FAIL
  fi

  # 7b. View-escape discipline lint: untagged view members, lambda escapes,
  # returns of locally-backed views, views used across an arena recycle. The
  # self-test proves every rule still fires.
  note "lint-views: tools/lint_views.py (+ --self-test)"
  if python3 "${REPO}/tools/lint_views.py" --self-test &&
     python3 "${REPO}/tools/lint_views.py" "${REPO}"; then
    record lint-views PASS
  else
    record lint-views FAIL
  fi

  # 7c. Loop-affinity discipline lint: loop-only functions called off the
  # loop thread, blocking waits inside loop bodies and posted callbacks,
  # completions invoked under a lock or mid-iteration, empty on-loop
  # reasons. The self-test seeds every rule — including reduced
  # reproductions of the PR 8 review bugs — and checks it fires.
  note "lint-loop: tools/lint_loop.py (+ --self-test)"
  if python3 "${REPO}/tools/lint_loop.py" --self-test &&
     python3 "${REPO}/tools/lint_loop.py" "${REPO}"; then
    record lint-loop PASS
  else
    record lint-loop FAIL
  fi
}

print_summary() {
  printf '\n=== check.sh summary ===\n'
  local failed=0
  for i in "${!NAMES[@]}"; do
    printf '  %-14s %s\n' "${NAMES[$i]}" "${RESULTS[$i]}"
    [[ "${RESULTS[$i]}" == FAIL ]] && failed=1
  done
  exit "${failed}"
}

if [[ ${LINTS_ONLY} -eq 1 ]]; then
  run_lints
  print_summary
fi

configure_build_test() {
  # configure_build_test <name> <src-flags...> -- <ctest-args...>
  local name="$1"; shift
  local -a cmake_flags=() ctest_args=()
  local seen_sep=0
  for arg in "$@"; do
    if [[ "${arg}" == "--" ]]; then seen_sep=1; continue; fi
    if [[ ${seen_sep} -eq 0 ]]; then cmake_flags+=("${arg}"); else ctest_args+=("${arg}"); fi
  done
  local dir="${BUILD_ROOT}/${name}"
  note "${name}: configure + build"
  if ! cmake -B "${dir}" -S "${REPO}" "${cmake_flags[@]}"; then
    record "${name}" FAIL; return 1
  fi
  if ! cmake --build "${dir}" -j "${JOBS}"; then
    record "${name}" FAIL; return 1
  fi
  note "${name}: ctest ${ctest_args[*]-}"
  if ! (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" "${ctest_args[@]}"); then
    record "${name}" FAIL; return 1
  fi
  record "${name}" PASS
}

# 1. Default build, full test suite (the tier-1 gate).
configure_build_test default --

# 2. ASan + UBSan, full suite, failures fatal (-fno-sanitize-recover=all).
configure_build_test asan-ubsan -DHCS_SANITIZE=address,undefined --

# 3. TSan over the multi-threaded / real-socket tests.
configure_build_test tsan -DHCS_SANITIZE=thread -- -L concurrency

# 3b. Same TSan binaries, reactor serving mode: HCS_REACTOR=1 flips every
# UdpServerHost onto the shared epoll runtime, so the worker-pool dispatch
# and graceful-drain paths get the same data-race gate as thread-per-endpoint.
if [[ -x "${BUILD_ROOT}/tsan/CMakeCache.txt" || -f "${BUILD_ROOT}/tsan/CMakeCache.txt" ]]; then
  note "tsan-reactor: ctest -L concurrency with HCS_REACTOR=1"
  if (cd "${BUILD_ROOT}/tsan" &&
      HCS_REACTOR=1 ctest --output-on-failure -j "${JOBS}" -L concurrency); then
    record tsan-reactor PASS
  else
    record tsan-reactor FAIL
  fi
else
  note "tsan-reactor: SKIP (tsan build unavailable)"
  record tsan-reactor SKIP
fi

# 4. Clang thread-safety annotations as errors (build-only gate).
if command -v clang++ >/dev/null 2>&1; then
  dir="${BUILD_ROOT}/thread-safety"
  note "annotations: clang++ -Werror=thread-safety"
  if cmake -B "${dir}" -S "${REPO}" -DCMAKE_CXX_COMPILER=clang++ \
        -DHCS_THREAD_SAFETY=ON &&
     cmake --build "${dir}" -j "${JOBS}"; then
    record annotations PASS
  else
    record annotations FAIL
  fi
else
  note "annotations: SKIP (no clang++ on PATH)"
  record annotations SKIP
fi

# 5. clang-tidy over src/, driven by the default build's compile database.
if command -v clang-tidy >/dev/null 2>&1; then
  note "clang-tidy: src/ against .clang-tidy"
  cmake -B "${BUILD_ROOT}/default" -S "${REPO}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t tidy_sources < <(find "${REPO}/src" -name '*.cc' | sort)
  if clang-tidy -p "${BUILD_ROOT}/default" --quiet "${tidy_sources[@]}"; then
    record clang-tidy PASS
  else
    record clang-tidy FAIL
  fi
else
  note "clang-tidy: SKIP (not on PATH)"
  record clang-tidy SKIP
fi

# 6–7c. The four static lints and their self-tests (shared with --lints mode).
run_lints

# 7c. The runtime half of the view-lifetime gate: under the asan-ubsan build
# (which compiles in HCS_DEBUG_ARENA/HCS_DEBUG_VIEW) the arena poisons
# recycled spans and generation-stamped views abort on stale access, so the
# death tests and the poisoned-arena fuzz leg run with real teeth — in both
# serve modes, since view retention bugs differ between thread-per-endpoint
# and the reactor.
if [[ -x "${BUILD_ROOT}/asan-ubsan/tests/view_lifetime_test" ]]; then
  note "views-asan: view_lifetime_test + fuzz_test under address,undefined (both serve modes)"
  if (cd "${BUILD_ROOT}/asan-ubsan" &&
      ctest --output-on-failure -R '^(view_lifetime_test|fuzz_test)$') &&
     (cd "${BUILD_ROOT}/asan-ubsan" &&
      HCS_REACTOR=1 ctest --output-on-failure -R '^(view_lifetime_test|fuzz_test)$'); then
    record views-asan PASS
  else
    record views-asan FAIL
  fi
else
  note "views-asan: SKIP (asan-ubsan build unavailable)"
  record views-asan SKIP
fi

# 8. The decoder truncation/bit-flip sweep, isolated under ASan+UBSan so a
# one-byte over-read in any Decode path is fatal, not merely undetected.
# Reuses the asan-ubsan build from step 2 when it exists.
if [[ -x "${BUILD_ROOT}/asan-ubsan/tests/decode_sweep_test" ]]; then
  note "decode-sweep-asan: decode_sweep_test under address,undefined"
  if (cd "${BUILD_ROOT}/asan-ubsan" &&
      ctest --output-on-failure -R '^decode_sweep_test$'); then
    record decode-sweep-asan PASS
  else
    record decode-sweep-asan FAIL
  fi
else
  note "decode-sweep-asan: SKIP (asan-ubsan build unavailable)"
  record decode-sweep-asan SKIP
fi

# 9. The seeded chaos scenarios, isolated under ASan+UBSan: injected drops,
# duplicates, reordering, corruption, and partitions with memory errors
# fatal. Reuses the asan-ubsan build from step 2 when it exists.
if [[ -x "${BUILD_ROOT}/asan-ubsan/tests/chaos_test" ]]; then
  note "chaos-asan: ctest -L chaos under address,undefined"
  if (cd "${BUILD_ROOT}/asan-ubsan" && ctest --output-on-failure -L chaos); then
    record chaos-asan PASS
  else
    record chaos-asan FAIL
  fi
else
  note "chaos-asan: SKIP (asan-ubsan build unavailable)"
  record chaos-asan SKIP
fi

# 9b. The workload scenario suite under ASan+UBSan at several fixed seeds:
# the million-client engine's determinism claims (same-seed fingerprints,
# trace replay) re-checked with memory errors fatal. HCS_WORKLOAD_POPULATION
# scales the tentpole scenario to sanitizer speed; the seeds are fixed so a
# failure names its replay command.
if [[ -x "${BUILD_ROOT}/asan-ubsan/tests/workload_test" ]]; then
  note "workload-asan: ctest -L workload under address,undefined (3 seeds)"
  workload_ok=1
  for seed in 0x5eedf00d 0x0ddba11 0xc0ffee42; do
    note "workload-asan: HCS_WORKLOAD_SEED=${seed}"
    if ! (cd "${BUILD_ROOT}/asan-ubsan" &&
          HCS_WORKLOAD_SEED="${seed}" HCS_WORKLOAD_POPULATION=100000 \
          ctest --output-on-failure -L workload); then
      workload_ok=0
    fi
  done
  if [[ ${workload_ok} -eq 1 ]]; then
    record workload-asan PASS
  else
    record workload-asan FAIL
  fi
else
  note "workload-asan: SKIP (asan-ubsan build unavailable)"
  record workload-asan SKIP
fi

# 10. The same scenarios under TSan, in both serve modes: the injector's
# serve-side hooks run on reactor workers and per-endpoint threads, and the
# decision/trace state is shared across every calling thread.
if [[ -x "${BUILD_ROOT}/tsan/tests/chaos_test" ]]; then
  note "chaos-tsan: ctest -L chaos under thread (both serve modes)"
  if (cd "${BUILD_ROOT}/tsan" && ctest --output-on-failure -L chaos) &&
     (cd "${BUILD_ROOT}/tsan" && HCS_REACTOR=1 ctest --output-on-failure -L chaos); then
    record chaos-tsan PASS
  else
    record chaos-tsan FAIL
  fi
else
  note "chaos-tsan: SKIP (tsan build unavailable)"
  record chaos-tsan SKIP
fi

# 11. The async client core under TSan, in both serve modes: the engine's
# loop thread completes futures that calling threads wait on, the chaos
# scenarios pipeline ≥8 calls through it, and the reap timer races new
# assignments. Reuses the tsan build from step 3 when it exists.
if [[ -x "${BUILD_ROOT}/tsan/tests/async_client_test" ]]; then
  note "async-tsan: async_client_test under thread (both serve modes)"
  if (cd "${BUILD_ROOT}/tsan" &&
      ctest --output-on-failure -R '^async_client_test$') &&
     (cd "${BUILD_ROOT}/tsan" &&
      HCS_REACTOR=1 ctest --output-on-failure -R '^async_client_test$'); then
    record async-tsan PASS
  else
    record async-tsan FAIL
  fi
else
  note "async-tsan: SKIP (tsan build unavailable)"
  record async-tsan SKIP
fi

# 12. Perf-trajectory snapshots: every BENCH_*.json must parse, match the
# schema, and clear the acceptance floors it records against the prior PR's
# numbers. Pure validation — CI boxes are not benchmarks; regenerate
# snapshots with tools/bench_snapshot.py --run on a quiet machine.
note "bench-smoke: tools/bench_snapshot.py --check"
if (cd "${REPO}" && python3 tools/bench_snapshot.py --check); then
  record bench-smoke PASS
else
  record bench-smoke FAIL
fi

print_summary
