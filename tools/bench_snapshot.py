#!/usr/bin/env python3
"""BENCH_*.json workflow: produce and machine-check perf snapshots.

Each PR that claims a performance change checks in a BENCH_<n>.json
produced by bench/bench_runner. The snapshot embeds its own acceptance
floors — every scenario carries an optional baseline {label, qps,
min_speedup} naming the prior PR's number it must beat — so the perf
trajectory is validated by CI arithmetic, not by prose in EXPERIMENTS.md.

  bench_snapshot.py --check [FILE...]
      Validate schema and trajectory floors. No FILE = every BENCH_*.json
      at the repo root. Exit 0 clean, 1 on any violation. This is the
      tier-1 `bench_smoke` ctest and the check.sh bench-smoke leg: it runs
      in milliseconds and never re-measures (CI boxes are not benchmarks).

  bench_snapshot.py --run [--build-dir DIR] [--out FILE] [--quick]
      Drive the built bench/bench_runner, write FILE (default
      BENCH_8.json), then --check it. Run on a quiet machine.

Two scenario shapes share schema v1: the original wall-clock shape
(bench/bench_runner) and "kind": "workload" sim-clock scenarios
(bench/bench_workload_engine -> BENCH_10.json) with virtual-time tails,
a hit-rate-vs-population curve point, and meta-store load. Sim-clock
numbers are deterministic, so their floors are exact.
"""

import glob
import json
import os
import subprocess
import sys

SCHEMA_VERSION = 1

# scenario field -> (type(s), nullable)
SCENARIO_FIELDS = {
    "name": (str, False),
    "serve_mode": (str, False),
    "udp_batch": (int, False),
    "clients": (int, False),
    "requests": (int, False),
    "qps": ((int, float), False),
    "p50_us": ((int, float), False),
    "p99_us": ((int, float), False),
    "recv_syscalls_per_req": ((int, float), True),
    "send_syscalls_per_req": ((int, float), True),
    "syscalls_per_req": ((int, float), True),
    "baseline": (dict, True),
}

BASELINE_FIELDS = {
    "label": (str, False),
    "qps": ((int, float), False),
    "min_speedup": ((int, float), False),
}

# Sim-clock workload scenarios (bench/bench_workload_engine -> BENCH_10.json)
# carry "kind": "workload" and a different shape: virtual-time tails in ms,
# a cache hit-rate point on the population curve, and the meta-store load.
# Scenarios without "kind" keep the original wall-clock shape above.
WORKLOAD_SCENARIO_FIELDS = {
    "name": (str, False),
    "kind": (str, False),
    "population": (int, False),
    "contexts": (int, False),
    "zipf_s": ((int, float), False),
    "queries": (int, False),
    "sim_qps": ((int, float), False),
    "p50_ms": ((int, float), False),
    "p99_ms": ((int, float), False),
    "p999_ms": ((int, float), False),
    "record_hit_rate": ((int, float), False),
    "composite_hit_rate": ((int, float), True),
    "meta_remote_lookups": (int, False),
    "fingerprint": (str, False),
    "baseline": (dict, True),
}

# Workload floors are on sim_qps: the virtual clock makes the number a
# deterministic property of the code path, so the floor is exact, not noisy.
WORKLOAD_BASELINE_FIELDS = {
    "label": (str, False),
    "sim_qps": ((int, float), False),
    "min_speedup": ((int, float), False),
}


def check_fields(obj, spec, where, errors):
    for field, (types, nullable) in spec.items():
        if field not in obj:
            errors.append(f"{where}: missing field '{field}'")
            continue
        value = obj[field]
        if value is None:
            if not nullable:
                errors.append(f"{where}: field '{field}' must not be null")
            continue
        if not isinstance(value, types):
            errors.append(f"{where}: field '{field}' has type "
                          f"{type(value).__name__}, want "
                          f"{getattr(types, '__name__', types)}")
    for field in obj:
        if field not in spec:
            errors.append(f"{where}: unknown field '{field}'")


def check_workload_values(s, where, errors):
    for field in ("population", "contexts", "queries", "sim_qps",
                  "p50_ms", "p99_ms", "p999_ms"):
        v = s.get(field)
        if isinstance(v, (int, float)) and v <= 0:
            errors.append(f"{where}: {field} = {v} is not positive")
    p50, p99, p999 = (s.get(f) for f in ("p50_ms", "p99_ms", "p999_ms"))
    if all(isinstance(v, (int, float)) for v in (p50, p99, p999)):
        if not p50 <= p99 <= p999:
            errors.append(f"{where}: tail inversion — want "
                          f"p50_ms <= p99_ms <= p999_ms, got "
                          f"{p50} / {p99} / {p999}")
    for field in ("record_hit_rate", "composite_hit_rate"):
        v = s.get(field)
        if isinstance(v, (int, float)) and not 0.0 <= v <= 1.0:
            errors.append(f"{where}: {field} = {v} outside [0, 1]")
    mrl = s.get("meta_remote_lookups")
    if isinstance(mrl, int) and mrl < 0:
        errors.append(f"{where}: meta_remote_lookups = {mrl} is negative")

    baseline = s.get("baseline")
    if isinstance(baseline, dict):
        check_fields(baseline, WORKLOAD_BASELINE_FIELDS, f"{where}: baseline",
                     errors)
        qps = s.get("sim_qps")
        base_qps = baseline.get("sim_qps")
        speedup = baseline.get("min_speedup")
        if (isinstance(qps, (int, float)) and isinstance(base_qps, (int, float))
                and isinstance(speedup, (int, float)) and base_qps > 0):
            floor = base_qps * speedup
            if qps < floor:
                errors.append(
                    f"{where}: TRAJECTORY REGRESSION — sim_qps {qps:.0f} is "
                    f"below the floor {floor:.0f} "
                    f"({speedup}x of {baseline.get('label')})")


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"{path}: schema_version is "
                      f"{doc.get('schema_version')!r}, want {SCHEMA_VERSION}")
    for field in ("bench", "generated_by", "environment"):
        if not isinstance(doc.get(field), str) or not doc.get(field):
            errors.append(f"{path}: missing or empty '{field}'")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        errors.append(f"{path}: 'scenarios' must be a non-empty list")
        return errors

    names = set()
    for i, s in enumerate(scenarios):
        where = f"{path}: scenarios[{i}]"
        if not isinstance(s, dict):
            errors.append(f"{where}: not an object")
            continue
        workload = s.get("kind") == "workload"
        check_fields(s, WORKLOAD_SCENARIO_FIELDS if workload else SCENARIO_FIELDS,
                     where, errors)
        name = s.get("name")
        if isinstance(name, str):
            where = f"{path}: scenario '{name}'"
            if name in names:
                errors.append(f"{where}: duplicate scenario name")
            names.add(name)

        if workload:
            check_workload_values(s, where, errors)
            continue

        for field in ("qps", "p50_us", "p99_us"):
            v = s.get(field)
            if isinstance(v, (int, float)) and v <= 0:
                errors.append(f"{where}: {field} = {v} is not positive")
        spr = s.get("syscalls_per_req")
        if isinstance(spr, (int, float)) and not 0 < spr <= 2.0:
            errors.append(f"{where}: syscalls_per_req = {spr} outside (0, 2] "
                          f"— a UDP request/reply needs at most one recv and "
                          f"one send syscall even unbatched")

        baseline = s.get("baseline")
        if isinstance(baseline, dict):
            check_fields(baseline, BASELINE_FIELDS, f"{where}: baseline", errors)
            qps = s.get("qps")
            base_qps = baseline.get("qps")
            speedup = baseline.get("min_speedup")
            if (isinstance(qps, (int, float)) and isinstance(base_qps, (int, float))
                    and isinstance(speedup, (int, float)) and base_qps > 0):
                floor = base_qps * speedup
                if qps < floor:
                    errors.append(
                        f"{where}: TRAJECTORY REGRESSION — qps {qps:.0f} is "
                        f"below the floor {floor:.0f} "
                        f"({speedup}x of {baseline.get('label')})")
    return errors


def run_check(paths):
    if not paths:
        paths = sorted(glob.glob("BENCH_*.json"))
        if not paths:
            print("bench_snapshot --check: no BENCH_*.json found", file=sys.stderr)
            return 1
    all_errors = []
    for path in paths:
        all_errors.extend(check_file(path))
    if all_errors:
        print(f"bench_snapshot --check: {len(all_errors)} violation(s):")
        for err in all_errors:
            print(f"  {err}")
        return 1
    total = sum(len(json.load(open(p, encoding="utf-8"))["scenarios"]) for p in paths)
    print(f"bench_snapshot --check: {len(paths)} snapshot(s), {total} "
          f"scenario(s), schema v{SCHEMA_VERSION}, all trajectory floors hold")
    return 0


def run_bench(build_dir, out, quick):
    runner = os.path.join(build_dir, "bench", "bench_runner")
    if not os.path.exists(runner):
        print(f"bench_snapshot --run: {runner} not built "
              f"(cmake --build {build_dir} --target bench_runner)", file=sys.stderr)
        return 1
    cmd = [runner, "--out", out] + (["--quick"] if quick else [])
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        return proc.returncode
    return run_check([out])


def main(argv):
    if "--check" in argv:
        argv.remove("--check")
        return run_check(argv)
    if "--run" in argv:
        argv.remove("--run")
        build_dir, out, quick = "build", "BENCH_8.json", False
        while argv:
            arg = argv.pop(0)
            if arg == "--build-dir" and argv:
                build_dir = argv.pop(0)
            elif arg == "--out" and argv:
                out = argv.pop(0)
            elif arg == "--quick":
                quick = True
            else:
                print(__doc__)
                return 2
        return run_bench(build_dir, out, quick)
    print(__doc__)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
