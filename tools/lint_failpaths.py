#!/usr/bin/env python3
"""Cross-TU failure-path discipline lint.

The compiler half of the failure-path gate is `HCS_NODISCARD` on
hcs::Status / hcs::Result<T> plus -Werror=unused-result: a *naked* dropped
error return no longer compiles. The remaining escape hatches are exactly
the patterns a compiler cannot judge, and this lint closes them tree-wide:

  1. `(void)`-casts of a Status/Result expression must carry an auditable
     ignore tag on the same or the preceding line:

         (void)client.Call(...);  // hcs:ignore-status(best effort; TTL converges)

     The cast silences -Wunused-result; the tag records *why* that is safe.
     Which expressions are Status/Result is decided cross-TU: every header
     and source under src/ contributes its Status/Result-returning function
     and method names to one database, so `(void)obj.Call(...)` in one TU is
     matched against `Result<Bytes> Call(...)` declared in another.

  2. Decode*/Get*/Parse*/FromWire/Demarshal results (Result<T>) must be
     checked with .ok()/.status() before .value()/operator*/operator-> use,
     and never dereferenced directly off the temporary (`Decode(x).value()`).
     Scope: src/ excluding src/testbed (the sim-harness builds a controlled
     world where constructors cannot propagate Status; its setup asserts are
     covered by the tier-1 suite instead). Control-flow caveat: the scan is
     per-function and textual, like lint_wire's set-level check — a use and
     a check in mutually exclusive branches still count as checked.

  3. RPC handler lambdas registered via RegisterProcedure must not swallow a
     failed Status/Result into a success reply: an `if (!x.ok())` (or
     `if (x.ok()) ... else`) branch inside a handler must return/propagate
     the error (which RpcServer::HandleMessage encodes as a protocol-level
     error reply) or carry an ignore tag. A branch that falls through to a
     success return drops the request without telling the caller why.

  4. Ignore tags must give a reason: `hcs:ignore-status()` is rejected.

  5. FaultInjector hooks must propagate their verdict. `FilterInbound`
     returns Status, so rules 1–3 already police it; `Decide` returns a
     plain FaultDecision the compiler will happily let fall on the floor.
     A discarded Decide() — a bare statement or a (void)-cast — consumes a
     PRNG draw without acting on it: the fault silently never happens AND
     the endpoint's decision stream shifts, breaking seed replay. Every
     Decide() result must be bound or consumed, or carry an ignore tag.

  6. Batched-datagram completion counts must be consumed. recvmmsg() /
     sendmmsg() (and the tree's SendReplies wrapper) report PARTIAL
     completion through a plain int/size_t the compiler never flags: a
     sendmmsg batch of 8 may send 3 and return 3, and a caller that drops
     the count silently loses five datagrams with no error anywhere. A
     bare-statement or (void)-cast call of any of these must bind the
     count, or carry an ignore tag explaining why the shortfall is safe.

  7. CallAsync futures must be consumed. A discarded RpcFuture is a
     fired-and-forgotten RPC: the call still goes on the wire, but its
     result — including the error that explains the outage you are
     debugging — evaporates, and nothing observes completion. The class is
     HCS_NODISCARD, so a naked discard fails to compile; this rule closes
     the escape hatches: a bare-statement CallAsync(...) call, a
     (void)-cast of the call, and a (void)-cast of an RpcFuture variable
     all require an ignore tag (Wait(), WaitFor(), ready(), or OnComplete()
     are the intended consumers).

Exit status 0 = clean; 1 = violations (one per line); 2 = usage.

Usage: lint_failpaths.py [repo_root]
       lint_failpaths.py --self-test   (seeds violations, checks they fire)

The stripping / brace-matching / self-test plumbing lives in lintlib.py,
shared by every lint in tools/.
"""

import os
import re
import sys

import lintlib
from lintlib import (call_is_bare_statement, iter_files, line_of,
                     match_brace_block, strip_comments_and_strings)

SRC_DIRS = ["src"]
# (void)-cast and empty-reason checks also cover the test/bench/example
# trees: a silently dropped Status in a test is a test that cannot fail.
VOID_DIRS = ["src", "tests", "bench", "examples", "tools"]
# Decode-before-ok scope (see module docstring for the testbed carve-out).
DECODE_CHECK_EXCLUDE = ["src/testbed"]

IGNORE_TAG = re.compile(r"hcs:ignore-status\(([^)]*)\)")
EMPTY_TAG = re.compile(r"hcs:ignore-status\(\s*\)")

# Return types that make a function part of the failure path.
SR_RETURN = r"(?:Status|Result<(?:[^<>;]|<[^<>;]*>)*>)"

# A declaration or definition returning Status/Result. Catches annotated
# header declarations, plain .cc definitions (`Result<X> Class::Name(`),
# and file-local helpers in anonymous namespaces.
SR_DECL = re.compile(
    r"^\s*(?:HCS_NODISCARD\s+)?(?:static\s+|virtual\s+|inline\s+)*"
    rf"{SR_RETURN}\s+(?:[\w:]+::)?(\w+)\s*\(",
    re.MULTILINE,
)

# Callee names whose Result must visibly pass an ok()/status() check before
# the value is touched (rule 2).
DECODE_NAME = re.compile(r"^(Decode|Get|Parse|FromWire$|Demarshal)")

VOID_CALL = re.compile(r"\(void\)\s*([\w.\->:()\[\]]*?)(\w+)\s*\(")
VOID_IDENT = re.compile(r"\(void\)\s*(\w+)\s*;")


def build_sr_database(root):
    """Names of functions/methods returning Status or Result, tree-wide."""
    names = set()
    for path in iter_files(root, SRC_DIRS):
        with open(path, encoding="utf-8") as f:
            text = strip_comments_and_strings(f.read())
        for m in SR_DECL.finditer(text):
            names.add(m.group(1))
    return names


def has_tag(raw_lines, lineno):
    return lintlib.has_tag(raw_lines, lineno, IGNORE_TAG)


def check_void_casts(root, sr_names, errors):
    for path in iter_files(root, VOID_DIRS):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        text = strip_comments_and_strings(raw)

        for m in VOID_CALL.finditer(text):
            callee = m.group(2)
            if callee not in sr_names:
                continue
            lineno = line_of(text, m.start())
            if not has_tag(raw_lines, lineno):
                errors.append(
                    f"{rel}:{lineno}: (void)-cast discards Status/Result of "
                    f"{callee}() without an // hcs:ignore-status(reason) tag")

        for m in VOID_IDENT.finditer(text):
            ident = m.group(1)
            # Only a violation when the identifier is a local declared as
            # Status/Result (unused-parameter casts of other types pass).
            decl = re.compile(rf"\b{SR_RETURN}\s+{re.escape(ident)}\s*[=;(]")
            window = text[max(0, m.start() - 4000) : m.start()]
            if not decl.search(window):
                continue
            lineno = line_of(text, m.start())
            if not has_tag(raw_lines, lineno):
                errors.append(
                    f"{rel}:{lineno}: (void)-cast discards Status/Result "
                    f"variable '{ident}' without an "
                    f"// hcs:ignore-status(reason) tag")


def check_decode_before_ok(root, sr_names, errors):
    scan = []
    for path in iter_files(root, SRC_DIRS, exts=(".cc",)):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if any(rel.startswith(d + "/") for d in DECODE_CHECK_EXCLUDE):
            continue
        scan.append(path)

    assign = re.compile(
        rf"(?:auto|{SR_RETURN})\s+(\w+)\s*=\s*[^;]*?\b(\w+)\s*\(", re.DOTALL)
    temp_value = re.compile(r"\b(\w+)\s*\(([^;()]*)\)\s*\.\s*value\s*\(\)")

    for path in scan:
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        text = strip_comments_and_strings(raw)

        # Rule 2a: value() straight off the Decode/Get temporary.
        for m in temp_value.finditer(text):
            callee = m.group(1)
            if callee in sr_names and DECODE_NAME.search(callee):
                lineno = line_of(text, m.start())
                if not has_tag(raw_lines, lineno):
                    errors.append(
                        f"{rel}:{lineno}: {callee}(...).value() dereferences a "
                        f"decode result before any ok() check")

        # Rule 2b: a named Result from a decoder used before an ok() check.
        for m in assign.finditer(text):
            var, callee = m.group(1), m.group(2)
            if callee not in sr_names or not DECODE_NAME.search(callee):
                continue
            # The enclosing scope: up to the end of the current function.
            close = text.find("\n}", m.end())
            close = len(text) if close < 0 else close
            body = text[m.end() : close]
            use = re.search(
                rf"\b{re.escape(var)}\s*(?:\.\s*value\s*\(|->|\))?|\*\s*{re.escape(var)}\b",
                body)
            checked = re.search(
                rf"\b{re.escape(var)}\s*\.\s*(ok|status)\s*\(", body)
            deref = re.search(
                rf"(?:\*\s*{re.escape(var)}\b|\b{re.escape(var)}\s*(?:\.\s*value\s*\(|->))",
                body)
            del use
            if deref and (not checked or checked.start() > deref.start()):
                lineno = line_of(text, m.start())
                if not has_tag(raw_lines, line_of(text, m.end() + deref.start())):
                    errors.append(
                        f"{rel}:{lineno}: decode result '{var}' from "
                        f"{callee}() is dereferenced before an ok() check")


def check_rpc_handlers(root, errors):
    register = re.compile(r"RegisterProcedure\s*\(")
    not_ok_branch = re.compile(r"if\s*\(\s*!\s*(\w+)\s*(?:\.|->)\s*(?:ok|status)\s*\(\)\s*\)\s*\{")

    for path in iter_files(root, SRC_DIRS, exts=(".cc",)):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        text = strip_comments_and_strings(raw)

        for m in register.finditer(text):
            # The handler body: first '{' after the match that begins a
            # lambda (look for "{" after "]...{" or "-> Result<Bytes> {").
            lam = re.search(r"\[[^\]]*\]\s*\([^)]*\)\s*(?:->\s*[\w:<>]+\s*)?\{",
                            text[m.end() : m.end() + 400])
            if lam is None:
                continue
            open_pos = text.find("{", m.end() + lam.end() - 1)
            body_end = match_brace_block(text, open_pos)
            body = text[open_pos:body_end]
            base = open_pos

            for b in not_ok_branch.finditer(body):
                var = b.group(1)
                block_open = base + b.end() - 1
                block_end = match_brace_block(text, block_open)
                block = text[block_open:block_end]
                propagates = re.search(
                    rf"return\b[^;]*(?:\b{re.escape(var)}\b|status\s*\(|Error\s*\()",
                    block) or "HCS_RETURN_IF_ERROR" in block
                lineno = line_of(text, block_open)
                if not propagates and not has_tag(raw_lines, lineno):
                    errors.append(
                        f"{rel}:{lineno}: RPC handler swallows failed "
                        f"'{var}' without returning an error reply "
                        f"(add a return or an // hcs:ignore-status(reason))")


def check_fault_decisions(root, errors):
    """Rule 5: FaultInjector::Decide results must act (see module docstring)."""
    bare = re.compile(r"^\s*[\w\[\]().\->]*(?:\.|->)\s*Decide\s*\(", re.MULTILINE)
    voided = re.compile(r"\(void\)\s*[\w\[\]().\->]*(?:\.|->)?\s*Decide\s*\(")

    for path in iter_files(root, VOID_DIRS):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        text = strip_comments_and_strings(raw)

        for m in bare.finditer(text):
            # A bare statement draws from the fault stream without acting
            # on it; a call consumed by the surrounding expression passes.
            if not call_is_bare_statement(text, m.start(), "Decide"):
                continue
            lineno = line_of(text, m.start())
            if not has_tag(raw_lines, lineno):
                errors.append(
                    f"{rel}:{lineno}: FaultInjector decision discarded — a "
                    f"bare Decide() draws from the fault stream without "
                    f"acting on it (bind the FaultDecision or add an "
                    f"// hcs:ignore-status(reason) tag)")

        for m in voided.finditer(text):
            lineno = line_of(text, m.start())
            if not has_tag(raw_lines, lineno):
                errors.append(
                    f"{rel}:{lineno}: (void)-cast discards a FaultDecision "
                    f"from Decide() without an // hcs:ignore-status(reason) "
                    f"tag")


def check_mmsg_completions(root, errors):
    """Rule 6: recvmmsg/sendmmsg/SendReplies counts must be consumed."""
    mmsg_names = r"(?:recvmmsg|sendmmsg|SendReplies)"
    bare = re.compile(
        rf"^\s*(?:[\w\[\]().\->]*(?:\.|->|::)\s*)?({mmsg_names})\s*\(",
        re.MULTILINE)
    voided = re.compile(
        rf"\(void\)\s*(?:[\w\[\]().\->]*(?:\.|->|::)\s*)?({mmsg_names})\s*\(")

    for path in iter_files(root, VOID_DIRS):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        text = strip_comments_and_strings(raw)

        for m in bare.finditer(text):
            # Same bare-statement test as Decide: a discarded count is a
            # silently truncated batch.
            if not call_is_bare_statement(text, m.start(), m.group(1)):
                continue
            lineno = line_of(text, m.start())
            if not has_tag(raw_lines, lineno):
                errors.append(
                    f"{rel}:{lineno}: {m.group(1)}() completion count "
                    f"discarded — batched sends/receives complete PARTIALLY "
                    f"and the count is the only signal (bind it or add an "
                    f"// hcs:ignore-status(reason) tag)")

        for m in voided.finditer(text):
            lineno = line_of(text, m.start())
            if not has_tag(raw_lines, lineno):
                errors.append(
                    f"{rel}:{lineno}: (void)-cast discards the "
                    f"{m.group(1)}() completion count without an "
                    f"// hcs:ignore-status(reason) tag")


def check_async_futures(root, errors):
    """Rule 7: CallAsync futures must be consumed (see module docstring)."""
    bare = re.compile(r"^\s*[\w\[\]().\->]*(?:\.|->|::)?\s*CallAsync\s*\(",
                      re.MULTILINE)
    voided = re.compile(r"\(void\)\s*[\w\[\]().\->]*(?:\.|->|::)?\s*CallAsync\s*\(")
    void_ident = re.compile(r"\(void\)\s*(\w+)\s*;")

    for path in iter_files(root, VOID_DIRS):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        text = strip_comments_and_strings(raw)

        for m in bare.finditer(text):
            # Bare statement: nothing observes the future's completion.
            if not call_is_bare_statement(text, m.start(), "CallAsync"):
                continue
            lineno = line_of(text, m.start())
            if not has_tag(raw_lines, lineno):
                errors.append(
                    f"{rel}:{lineno}: CallAsync() future discarded — a "
                    f"fired-and-forgotten RPC whose outcome nobody observes "
                    f"(Wait()/OnComplete() it or add an "
                    f"// hcs:ignore-status(reason) tag)")

        for m in voided.finditer(text):
            lineno = line_of(text, m.start())
            if not has_tag(raw_lines, lineno):
                errors.append(
                    f"{rel}:{lineno}: (void)-cast discards the RpcFuture "
                    f"from CallAsync() without an "
                    f"// hcs:ignore-status(reason) tag")

        for m in void_ident.finditer(text):
            ident = m.group(1)
            decl = re.compile(rf"\bRpcFuture\s+{re.escape(ident)}\s*[=;({{]")
            window = text[max(0, m.start() - 4000) : m.start()]
            if not decl.search(window):
                continue
            lineno = line_of(text, m.start())
            if not has_tag(raw_lines, lineno):
                errors.append(
                    f"{rel}:{lineno}: (void)-cast discards RpcFuture "
                    f"'{ident}' — the async completion is never consumed "
                    f"(Wait()/OnComplete() it or add an "
                    f"// hcs:ignore-status(reason) tag)")


def check_empty_tags(root, errors):
    for path in iter_files(root, VOID_DIRS, exts=(".h", ".cc", ".py", ".sh")):
        if os.path.basename(path) == "lint_failpaths.py":
            continue  # this file names the pattern in its own docs
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if EMPTY_TAG.search(line):
                    errors.append(
                        f"{rel}:{lineno}: hcs:ignore-status() has an empty "
                        f"reason — say why discarding is safe")


def run(root):
    errors = []
    sr_names = build_sr_database(root)
    if not sr_names:
        errors.append("src/: found no Status/Result-returning declarations "
                      "(wrong repo root?)")
    check_void_casts(root, sr_names, errors)
    check_decode_before_ok(root, sr_names, errors)
    check_rpc_handlers(root, errors)
    check_fault_decisions(root, errors)
    check_mmsg_completions(root, errors)
    check_async_futures(root, errors)
    check_empty_tags(root, errors)

    if errors:
        print(f"lint_failpaths: {len(errors)} violation(s):")
        for err in sorted(errors):
            print(f"  {err}")
        return 1
    print(f"lint_failpaths: clean ({len(sr_names)} Status/Result-returning "
          f"functions in the cross-TU database)")
    return 0


# --- self test ---------------------------------------------------------------

SELF_TEST_HEADER = """
#define HCS_NODISCARD [[nodiscard]]
class HCS_NODISCARD Status {};
template <typename T> class HCS_NODISCARD Result {};
HCS_NODISCARD Status Flush();
HCS_NODISCARD Result<int> DecodeThing(int);
"""

SELF_TEST_CASES = [
    # (name, file content, substring the lint must print)
    ("naked-void-call",
     "void f() {\n  (void)Flush();\n}\n",
     "without an // hcs:ignore-status"),
    ("tagged-void-call-ok",
     "void f() {\n  (void)Flush();  // hcs:ignore-status(best effort)\n}\n",
     None),
    ("naked-void-var",
     "void f() {\n  Status s = Flush();\n  (void)s;\n}\n",
     "variable 's'"),
    ("decode-temporary-value",
     "void f() {\n  int v = DecodeThing(1).value();\n}\n",
     "before any ok() check"),
    ("decode-var-unchecked",
     "void f() {\n  auto r = DecodeThing(1);\n  use(r.value());\n}\n",
     "dereferenced before an ok() check"),
    ("decode-var-checked-ok",
     "void f() {\n  auto r = DecodeThing(1);\n  if (!r.ok()) return;\n"
     "  use(r.value());\n}\n",
     None),
    ("handler-swallows-error",
     "void g() {\n  server.RegisterProcedure(1, 2, [](const Bytes& a)"
     " -> Result<Bytes> {\n    auto r = DecodeThing(1);\n"
     "    if (!r.ok()) {\n      log();\n    }\n    return ok_bytes();\n"
     "  });\n}\n",
     "swallows failed 'r'"),
    ("empty-tag",
     "void f() {\n  (void)Flush();  // hcs:ignore-status()\n}\n",
     "empty"),
    ("bare-decide-discard",
     "void f() {\n  injector->Decide(host, port);\n}\n",
     "bare Decide() draws from the fault stream"),
    ("void-decide-discard",
     "void f() {\n  (void)injector.Decide(host, port);\n}\n",
     "discards a FaultDecision"),
    ("decide-consumed-ok",
     "void f() {\n  FaultDecision d = injector->Decide(host, port);\n"
     "  if (d.drop) return;\n}\n",
     None),
    ("decide-tagged-ok",
     "void f() {\n  // hcs:ignore-status(warming the stream for the test)\n"
     "  injector->Decide(host, port);\n}\n",
     None),
    ("bare-sendmmsg-discard",
     "void f() {\n  sendmmsg(fd, msgs, 8, 0);\n}\n",
     "sendmmsg() completion count discarded"),
    ("bare-recvmmsg-discard",
     "void f() {\n  recvmmsg(fd, msgs, 8, 0, nullptr);\n}\n",
     "recvmmsg() completion count discarded"),
    ("bare-sendreplies-discard",
     "void f() {\n  SendReplies(fd, replies);\n}\n",
     "SendReplies() completion count discarded"),
    ("void-sendmmsg-discard",
     "void f() {\n  (void)sendmmsg(fd, msgs, 8, 0);\n}\n",
     "discards the sendmmsg() completion count"),
    ("sendmmsg-count-bound-ok",
     "void f() {\n  int n = sendmmsg(fd, msgs, 8, 0);\n  use(n);\n}\n",
     None),
    ("sendmmsg-in-expression-ok",
     "int f() {\n  return sendmmsg(fd, msgs, 8, 0);\n}\n",
     None),
    ("sendreplies-tagged-ok",
     "void f() {\n  // hcs:ignore-status(fire-and-forget wake datagram)\n"
     "  SendReplies(fd, replies);\n}\n",
     None),
    ("bare-callasync-discard",
     "void f() {\n  client.CallAsync(binding, 1, args);\n}\n",
     "CallAsync() future discarded"),
    ("void-callasync-discard",
     "void f() {\n  (void)client.CallAsync(binding, 1, args);\n}\n",
     "discards the RpcFuture from CallAsync()"),
    ("void-future-var-discard",
     "void f() {\n  RpcFuture fut = client.CallAsync(binding, 1, args);\n"
     "  (void)fut;\n}\n",
     "async completion is never consumed"),
    ("callasync-waited-ok",
     "void f() {\n  RpcFuture fut = client.CallAsync(binding, 1, args);\n"
     "  use(fut.Wait());\n}\n",
     None),
    ("callasync-in-expression-ok",
     "void f() {\n  futures.push_back(client.CallAsync(binding, 1, args));\n}\n",
     None),
    ("callasync-tagged-ok",
     "void f() {\n  // hcs:ignore-status(probe call; outcome measured by the drop counter)\n"
     "  client.CallAsync(binding, 1, args);\n}\n",
     None),
]


def run_checks_for_self_test(root):
    errors = []
    sr_names = build_sr_database(root)
    check_void_casts(root, sr_names, errors)
    check_decode_before_ok(root, sr_names, errors)
    check_rpc_handlers(root, errors)
    check_fault_decisions(root, errors)
    check_mmsg_completions(root, errors)
    check_async_futures(root, errors)
    check_empty_tags(root, errors)
    return errors


def self_test():
    return lintlib.run_self_test_cases(
        "lint_failpaths", SELF_TEST_HEADER, SELF_TEST_CASES,
        run_checks_for_self_test)


def main():
    if len(sys.argv) > 2:
        print(__doc__)
        return 2
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return self_test()
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    return run(root)


if __name__ == "__main__":
    sys.exit(main())
