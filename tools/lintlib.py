"""Shared plumbing for the tree's cross-TU textual lints.

Every lint in tools/ (lint_wire, lint_failpaths, lint_views, lint_loop)
follows the same architecture: build a producer database from declarations
tree-wide, strip comments/strings from each TU, walk brace-matched function
bodies, and consult greppable `hcs:<tag>(reason)` escape hatches in the raw
source. Until lint_loop the plumbing for that was triplicated — three
near-identical strippers, two brace matchers, two body walkers — and the
copies had already begun to drift (lint_failpaths carried a dead, divergent
`function_bodies`). This module is the single copy.

Behavioral contract: the helpers here are byte-for-byte the lint_views
versions (the superset implementations), and the existing lint self-tests
pin that behavior — refactors of this file must keep
`lint_failpaths.py --self-test` and `lint_views.py --self-test` green
unchanged.

What lives here:

  * strip_comments_and_strings — blanks comments and string/char literals,
    preserving newlines so line numbers survive.
  * iter_files — walk repo-relative directory lists for .h/.cc (or any
    extension set).
  * line_of — position -> 1-based line number.
  * has_tag — tag on the same or the preceding RAW line (tags live in
    comments, which the stripped text blanks). Parameterized by the tag
    regex so each lint brings its own `hcs:*` family.
  * match_brace_block / function_bodies / blank_function_bodies — the body
    walker (handles const/noexcept/trailing-return signatures, lambdas,
    and skips bodies nested inside one already yielded).
  * function_defs — named-definition walker (adds the callee name and
    optional Class:: qualifier); used by lints that must attribute a body
    to a function in the producer database.
  * lambda_after — find a lambda introducer at/after a sink call.
  * call_is_bare_statement — the "closing paren runs straight into ';'"
    test for discarded call results (was repeated three times inside
    lint_failpaths).
  * run_self_test_cases — the seeded-tempdir self-test harness: write
    src/seed.h + src/seed.cc, run the lint's checks, assert each expected
    violation substring fires (or that the case is clean).
"""

import os
import re
import tempfile


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.extend(ch if ch == "\n" else " " for ch in text[i : j + 2])
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_files(root, rel_dirs, exts=(".h", ".cc")):
    for rel in rel_dirs:
        base = os.path.join(root, rel)
        if os.path.isfile(base):
            yield base
            continue
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def has_tag(raw_lines, lineno, tag_re):
    """Tag on the same line or the line above (tags live in comments, which
    the stripped text blanks — so consult the raw source)."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines) and tag_re.search(raw_lines[ln - 1]):
            return True
    return False


def match_brace_block(text, open_pos):
    """Returns the end index (past '}') of the block opening at open_pos."""
    depth = 0
    i = open_pos
    while i < len(text):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(text)


def function_bodies(text):
    """Yields (start, end) spans of function bodies: '{' preceded by a
    parameter list ')' (with optional const/noexcept/trailing return) or a
    brace at column zero."""
    seen_end = 0
    for m in re.finditer(
            r"\)\s*(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>,&*\s]+?)?\s*\{"
            r"|^\{|\]\s*\{",
            text, re.MULTILINE):
        open_pos = text.find("{", m.start())
        if open_pos < seen_end:
            continue  # nested inside a body already yielded
        end = match_brace_block(text, open_pos)
        seen_end = end
        yield open_pos, end


def blank_function_bodies(text):
    """Replaces the interior of every function body with spaces (newlines
    kept) so class-body scans see member declarations only."""
    out = list(text)
    for start, end in function_bodies(text):
        for i in range(start + 1, end - 1):
            if out[i] != "\n":
                out[i] = " "
    return "".join(out)


# Control keywords whose `kw (...) {` shape mimics a function definition.
_NON_FUNCTION_NAMES = frozenset(
    {"if", "for", "while", "switch", "catch", "return", "sizeof", "do"})

# A named function definition: `Name(params) [const] [noexcept] [: init] {`
# with one nesting level allowed inside the parameter list (e.g.
# std::function<void(uint32_t)> parameters).
_FUNCTION_DEF = re.compile(
    r"\b(?:([\w~]+)\s*::\s*)?([\w~]+)\s*"
    r"\(([^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>,&*\s]+?)?\s*"
    r"(?::[^;{}]*)?\{")


def function_defs(text):
    """Yields (qualifier, name, body_start, body_end, sig_pos) for named
    function definitions, skipping control-flow keywords and definitions
    nested inside a body already yielded. `qualifier` is the Class in
    `Class::Name` or None for free/in-class definitions."""
    seen_end = 0
    for m in _FUNCTION_DEF.finditer(text):
        name = m.group(2)
        if name in _NON_FUNCTION_NAMES:
            continue
        open_pos = text.find("{", m.end() - 1)
        if open_pos < seen_end or m.start() < seen_end:
            continue
        end = match_brace_block(text, open_pos)
        seen_end = end
        yield m.group(1), name, open_pos, end, m.start()


def lambda_after(text, pos, limit=240):
    """Finds the first lambda capture list at/after pos (within limit).
    Returns (capture_list, body_open) or None."""
    m = re.search(r"\[([^\]\[]*)\]\s*(?:\([^)]*\)\s*)?(?:mutable\s*)?"
                  r"(?:->\s*[\w:<>,&*\s]+?)?\s*\{",
                  text[pos : pos + limit])
    if m is None:
        return None
    return m.group(1), pos + m.end() - 1


def call_is_bare_statement(text, start, name):
    """True when the call to `name` found at/after `start` is a bare
    statement: its closing paren runs straight into ';'. Anything else —
    '.', ')', an operator — hands the result to the surrounding
    expression, which is consumption."""
    open_paren = text.find("(", text.find(name, start))
    depth, i = 0, open_paren
    while i < len(text):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    tail = text[i + 1 : i + 16].lstrip()
    return tail.startswith(";")


def run_self_test_cases(lint_name, seed_header, cases, run_checks):
    """The seeded-tempdir self-test harness shared by every lint.

    `cases` is a list of (name, seed_cc_body, want) where `want` is a
    substring some violation must contain, or None for a must-be-clean
    case. `run_checks(root)` returns the lint's error list for that root.
    Prints a summary and returns a process exit status (0 ok, 1 failures).
    """
    failures = []
    for name, body, want in cases:
        with tempfile.TemporaryDirectory() as root:
            os.makedirs(os.path.join(root, "src"))
            with open(os.path.join(root, "src", "seed.h"), "w") as f:
                f.write(seed_header)
            with open(os.path.join(root, "src", "seed.cc"), "w") as f:
                f.write(body)
            errors = run_checks(root)
            if want is None:
                if errors:
                    failures.append(f"{name}: expected clean, got {errors}")
            else:
                if not any(want in e for e in errors):
                    failures.append(
                        f"{name}: expected a violation containing {want!r}, "
                        f"got {errors}")
    if failures:
        print(f"{lint_name} --self-test: {len(failures)} failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"{lint_name} --self-test: all {len(cases)} seeded cases behave")
    return 0
