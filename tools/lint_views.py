#!/usr/bin/env python3
"""Cross-TU view-escape lint: the static half of the zero-copy lifetime gate.

The hot path hands out non-owning views (hcs::BytesView, string_view) into
batch arenas and decode buffers (DESIGN.md §13). The runtime half of the
gate is the poisoned debug arena + generation-stamped views
(HCS_VIEW_DEBUG_ENABLED, src/common/{arena,bytes}.h) — but that only fires
on paths a test exercises. This lint closes the gap statically, tree-wide:

  V1. View-typed STORAGE: a BytesView / string_view class member, or a
      container element of one (vector<BytesView>, map<K, string_view>...),
      outlives the statement that created it by construction — exactly what
      a view must justify. Every such declaration must carry an auditable
      tag on the same or the preceding line:

          BytesView args;  // hcs:owns-view(call-scoped: dies with the frame)

      The tag records WHY the backing storage provably outlives the holder.

  V2. View ESCAPE BY LAMBDA: a view variable captured (by value or by
      reference) into a lambda handed to an escaping sink — a reactor task
      post (Enqueue/Submit/Post/Defer), a std::thread, or a stored callback
      (assignment of a lambda to a member). A copied BytesView is still a
      dangling pointer once the arena recycles; capture the owning batch or
      materialize with ToBytes() instead, or tag the sink line.

  V3. View RETURN OF LOCAL BACKING: a function whose return type is a view
      returning a view derived from a LOCAL owner (Arena, Bytes, Buffer,
      std::string, vector<uint8_t>) — including through a BufferReader
      constructed over the local. The owner dies at the return; the view is
      born dangling. Which names produce views is decided cross-TU: every
      header and source under src/ contributes its view-returning function
      names (GetView, GetOpaqueView, GetSequenceView, ...) to one database.

  V4. View LIVE ACROSS A RECYCLE: within one function body, a view variable
      declared before an Arena::Reset() / UdpRecvBatch::Recv() on an
      arena/batch object and used after it. Reset/Recv invalidates every
      outstanding view (the debug arena enforces this at runtime with a
      generation bump); textual order is the static over-approximation —
      in a loop, a view declared after the Recv at the top of the body is
      (correctly) not flagged, one hoisted out of the loop is.

  V5. Tags must give a reason: `hcs:owns-view()` is rejected.

The scan is textual and per-function like lint_failpaths: a view use and a
kill in mutually exclusive branches still count as crossing. The tag is the
escape hatch, and the tag is greppable — `git grep hcs:owns-view` is the
audit of every sanctioned view escape in the tree. The stripping / body
walking / self-test plumbing lives in lintlib.py, shared by every lint.

Exit status 0 = clean; 1 = violations (one per line); 2 = usage.

Usage: lint_views.py [repo_root]
       lint_views.py --self-test   (seeds violations, checks they fire)
"""

import os
import re
import sys

import lintlib
from lintlib import (blank_function_bodies, function_bodies, iter_files,
                     lambda_after, line_of, match_brace_block,
                     strip_comments_and_strings)

SRC_DIRS = ["src"]
# Storage/escape checks cover the test and bench trees too: a dangling view
# in a test reads recycled memory and flakes; deliberate violations in
# death tests carry tags like production code does.
VIEW_DIRS = ["src", "tests", "bench", "examples"]
TAG_DIRS = ["src", "tests", "bench", "examples", "tools"]

OWNS_TAG = re.compile(r"hcs:owns-view\(([^)]*)\)")
EMPTY_TAG = re.compile(r"hcs:owns-view\(\s*\)")

# The view types this tree hands out. hcs::BytesView is the wire currency;
# string_view escapes matter identically.
VIEW_TYPE = r"(?:hcs::)?(?:BytesView|std::string_view|string_view)"

# A declaration or definition returning a view (possibly wrapped in
# Result<>) — the cross-TU producer database for V3/V4 variable tracking.
VIEW_PRODUCER_DECL = re.compile(
    r"^\s*(?:HCS_NODISCARD\s+)?(?:static\s+|virtual\s+|inline\s+|constexpr\s+)*"
    rf"(?:(?:hcs::)?Result<\s*)?{VIEW_TYPE}\s*>?\s+(?:[\w:]+::)?(\w+)\s*\(",
    re.MULTILINE,
)

# Local view-variable declarations inside a function body.
VIEW_VAR_DECL = re.compile(
    rf"\b(?:const\s+)?{VIEW_TYPE}\s+(\w+)\s*[=;({{]")
VIEW_VAR_ASSIGN_OR_RETURN = re.compile(
    rf"HCS_ASSIGN_OR_RETURN\s*\(\s*{VIEW_TYPE}\s+(\w+)")
AUTO_ASSIGN = re.compile(r"\b(?:const\s+)?auto\s+(\w+)\s*=\s*[^;]*?\b(\w+)\s*\(")

# V1: member / container-element view storage (scanned inside class bodies
# with function bodies blanked out).
MEMBER_VIEW = re.compile(
    rf"^\s*(?:mutable\s+)?(?:const\s+)?{VIEW_TYPE}\s+(\w+)\s*(?:=[^;]*)?;",
    re.MULTILINE)
CONTAINER_VIEW = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?(?:std::)?"
    r"(?:vector|deque|array|optional|set|map|unordered_map|pair)\s*"
    r"<[^;{}()]*\b(?:BytesView|string_view)\b[^;{}()]*>\s+(\w+)"
    r"\s*(?:\{[^;{}]*\})?\s*(?:=[^;]*)?;",
    re.MULTILINE)

# V2: sinks a lambda escapes through. Submit takes (endpoint, lambda);
# the lambda finder skips leading non-lambda arguments.
ESCAPE_SINK = re.compile(r"\b(Enqueue|Submit|Post|Defer|std::thread|thread)\s*\(")
STORED_CALLBACK = re.compile(r"\b(\w+_)\s*=\s*\[")

# V3: local owners whose storage dies with the function.
LOCAL_OWNER = re.compile(
    r"(?:^|[;{}]\s*)(?:const\s+)?"
    r"(Arena|Bytes|BufferWriter|std::string|std::vector<uint8_t>)\s+(\w+)\s*[;({=]")
READER_OVER = re.compile(r"\bBufferReader\s+(\w+)\s*[({]")

# V4: kill sites. Reset/Recv on something that is an arena or a batch —
# either by declared type in the same body or by name.
KILL_SITE = re.compile(r"\b(\w+)(?:\.|->)\s*(Reset|Recv)\s*\(")
ARENA_DECL = re.compile(r"\b(?:Arena|UdpRecvBatch)[&*]?\s+(\w+)\s*[;({=]")
ARENAISH_NAME = re.compile(r"arena|batch", re.IGNORECASE)


def has_tag(raw_lines, lineno):
    return lintlib.has_tag(raw_lines, lineno, OWNS_TAG)


def build_view_producer_db(root):
    """Names of functions/methods returning a view type, tree-wide."""
    names = set()
    for path in iter_files(root, SRC_DIRS):
        with open(path, encoding="utf-8") as f:
            text = strip_comments_and_strings(f.read())
        for m in VIEW_PRODUCER_DECL.finditer(text):
            names.add(m.group(1))
    return names


def view_vars_in(body, base, producers):
    """Maps view-variable name -> decl position (absolute) within a body."""
    out = {}
    for m in VIEW_VAR_DECL.finditer(body):
        out.setdefault(m.group(1), base + m.start())
    for m in VIEW_VAR_ASSIGN_OR_RETURN.finditer(body):
        out.setdefault(m.group(1), base + m.start())
    for m in AUTO_ASSIGN.finditer(body):
        if m.group(2) in producers:
            out.setdefault(m.group(1), base + m.start())
    return out


def check_view_members(root, errors):
    """V1: view-typed members and container elements must be tagged."""
    reported = set()
    for path in iter_files(root, VIEW_DIRS):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        text = blank_function_bodies(strip_comments_and_strings(raw))

        for cm in re.finditer(r"\b(?:class|struct)\s+\w[^;{()]*\{", text):
            open_pos = text.find("{", cm.start())
            body = text[open_pos:match_brace_block(text, open_pos)]
            for pat, what in ((MEMBER_VIEW, "view-typed member"),
                              (CONTAINER_VIEW, "container of views")):
                for m in pat.finditer(body):
                    lineno = line_of(text, open_pos + m.start() +
                                     len(m.group(0)) - len(m.group(0).lstrip()))
                    key = (rel, lineno)
                    if key in reported or has_tag(raw_lines, lineno):
                        continue
                    reported.add(key)
                    errors.append(
                        f"{rel}:{lineno}: {what} '{m.group(1)}' stores a "
                        f"non-owning view past its statement — tag it with "
                        f"// hcs:owns-view(why the backing outlives this) "
                        f"or own the bytes")


def lambda_escapes_view(captures, body, views):
    """Which view var (if any) escapes through this lambda."""
    toks = [t.strip() for t in captures.split(",") if t.strip()]
    by_ref_default = any(t == "&" for t in toks)
    by_val_default = any(t == "=" for t in toks)
    for name in views:
        for t in toks:
            # [v], [&v], [x = v], [x = v.sub(...)]
            if re.search(rf"(?:^|=[^=]*\b)&?\s*\b{re.escape(name)}\b", t):
                return name
        if (by_ref_default or by_val_default) and re.search(
                rf"\b{re.escape(name)}\b", body):
            return name
    return None


def check_lambda_escapes(root, producers, errors):
    """V2: view vars must not ride a lambda into an escaping sink."""
    for path in iter_files(root, VIEW_DIRS):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        text = strip_comments_and_strings(raw)

        for start, end in function_bodies(text):
            body = text[start:end]
            views = view_vars_in(body, start, producers)
            if not views:
                continue
            sinks = [(m.start() + start, m.group(1))
                     for m in ESCAPE_SINK.finditer(body)]
            sinks += [(m.start() + start, f"stored callback '{m.group(1)}'")
                      for m in STORED_CALLBACK.finditer(body)]
            for pos, sink in sinks:
                lam = lambda_after(text, pos)
                if lam is None:
                    continue
                captures, body_open = lam
                if body_open >= end:
                    continue
                lam_body = text[body_open:match_brace_block(text, body_open)]
                name = lambda_escapes_view(captures, lam_body, views)
                if name is None:
                    continue
                lineno = line_of(text, pos)
                if not has_tag(raw_lines, lineno):
                    errors.append(
                        f"{rel}:{lineno}: view '{name}' escapes through a "
                        f"lambda into {sink} — the backing arena can recycle "
                        f"before it runs (capture the owning batch, "
                        f"ToBytes(), or tag // hcs:owns-view(reason))")


def check_return_of_local(root, producers, errors):
    """V3: view-returning functions must not return views of local owners."""
    for path in iter_files(root, VIEW_DIRS):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        text = strip_comments_and_strings(raw)

        returns_view = re.compile(
            rf"(?:(?:hcs::)?Result<\s*)?{VIEW_TYPE}\s*>?\s+[\w:]+\s*"
            r"\([^;{}]*\)\s*(?:const\s*)?(?:noexcept\s*)?$")

        for start, end in function_bodies(text):
            sig = text[max(0, start - 400) : start].rstrip()
            if not returns_view.search(sig):
                continue
            body = text[start:end]
            owners = {m.group(2) for m in LOCAL_OWNER.finditer(body)}
            if not owners:
                continue
            # Taint propagation: readers over a local owner, then view vars
            # built from an owner or a tainted reader.
            tainted = set(owners)
            for m in READER_OVER.finditer(body):
                stmt = body[m.start() : body.find(";", m.start()) + 1]
                if any(re.search(rf"\b{re.escape(o)}\b", stmt) for o in owners):
                    tainted.add(m.group(1))
            views = view_vars_in(body, 0, producers)
            tainted_views = set()
            for name, pos in views.items():
                stmt = body[pos : body.find(";", pos) + 1]
                if any(re.search(rf"\b{re.escape(t)}\b", stmt)
                       for t in tainted):
                    tainted_views.add(name)
            for m in re.finditer(r"\breturn\b([^;]*);", body):
                expr = m.group(1)
                hit = next(
                    (t for t in sorted(tainted | tainted_views)
                     if t not in owners or "(" in expr or "." in expr
                     if re.search(rf"\b{re.escape(t)}\b", expr)), None)
                if hit is None:
                    continue
                lineno = line_of(text, start + m.start())
                if not has_tag(raw_lines, lineno):
                    errors.append(
                        f"{rel}:{lineno}: returns a view backed by local "
                        f"'{hit}' which dies at this return — return owned "
                        f"bytes, take the owner as a parameter, or tag "
                        f"// hcs:owns-view(reason)")


def check_use_across_reset(root, producers, errors):
    """V4: a view declared before an arena/batch Reset/Recv and used after
    it within the same body is reading recycled memory."""
    for path in iter_files(root, VIEW_DIRS):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        text = strip_comments_and_strings(raw)

        for start, end in function_bodies(text):
            body = text[start:end]
            views = view_vars_in(body, start, producers)
            if not views:
                continue
            arenas = {m.group(1) for m in ARENA_DECL.finditer(body)}
            kills = []
            for m in KILL_SITE.finditer(body):
                recv = m.group(1)
                if recv in arenas or ARENAISH_NAME.search(recv):
                    kills.append((start + m.start(), recv, m.group(2)))
            if not kills:
                continue
            for name, decl_pos in views.items():
                use_re = re.compile(rf"\b{re.escape(name)}\b")
                for kill_pos, recv, op in kills:
                    if decl_pos >= kill_pos:
                        continue
                    use = use_re.search(body, kill_pos - start + 1)
                    if use is None:
                        continue
                    use_pos = start + use.start()
                    lineno = line_of(text, use_pos)
                    if not has_tag(raw_lines, lineno):
                        errors.append(
                            f"{rel}:{lineno}: view '{name}' used after "
                            f"{recv}.{op}() recycled its backing memory "
                            f"(declared before the {op} at line "
                            f"{line_of(text, decl_pos)}) — re-derive the "
                            f"view or tag // hcs:owns-view(reason)")
                    break  # one report per view var


def check_empty_tags(root, errors):
    """V5: a tag without a reason is an unaudited escape."""
    for path in iter_files(root, TAG_DIRS, exts=(".h", ".cc", ".py", ".sh")):
        if os.path.basename(path) == "lint_views.py":
            continue  # this file names the pattern in its own docs
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if EMPTY_TAG.search(line):
                    errors.append(
                        f"{rel}:{lineno}: hcs:owns-view() has an empty "
                        f"reason — say why the backing outlives the view")


def run(root):
    errors = []
    producers = build_view_producer_db(root)
    if not producers:
        errors.append("src/: found no view-returning declarations "
                      "(wrong repo root?)")
    check_view_members(root, errors)
    check_lambda_escapes(root, producers, errors)
    check_return_of_local(root, producers, errors)
    check_use_across_reset(root, producers, errors)
    check_empty_tags(root, errors)

    if errors:
        print(f"lint_views: {len(errors)} violation(s):")
        for err in sorted(errors):
            print(f"  {err}")
        return 1
    print(f"lint_views: clean ({len(producers)} view-producing functions in "
          f"the cross-TU database)")
    return 0


# --- self test ---------------------------------------------------------------

SELF_TEST_HEADER = """
#include <cstdint>
template <typename T> class Result {};
class Bytes { public: const uint8_t* data() const; unsigned long size() const; };
class BytesView { public: const uint8_t* data() const; };
class Arena { public: uint8_t* Allocate(unsigned long n); void Reset(); };
class UdpRecvBatch { public: int Recv(int fd, bool w); };
class BufferReader { public: explicit BufferReader(const Bytes& b); };
BytesView GetView(int);
BytesView GetOpaqueView(int);
Result<BytesView> GetSequenceView(int);
"""

SELF_TEST_CASES = [
    # (name, file content, substring the lint must print)
    ("member-view-untagged",
     "class Holder {\n public:\n  BytesView view_;\n};\n",
     "view-typed member 'view_'"),
    ("member-view-tagged-ok",
     "class Holder {\n public:\n"
     "  BytesView view_;  // hcs:owns-view(backing pinned by owner_)\n};\n",
     None),
    ("member-string-view-untagged",
     "struct Row {\n  std::string_view name;\n};\n",
     "view-typed member 'name'"),
    ("container-of-views-untagged",
     "class Cache {\n  std::vector<BytesView> frames_;\n};\n",
     "container of views 'frames_'"),
    ("container-tagged-ok",
     "class Cache {\n  // hcs:owns-view(entries die with the batch each tick)\n"
     "  std::vector<BytesView> frames_;\n};\n",
     None),
    ("plain-members-ok",
     "class Plain {\n  Bytes owned_;\n  const uint8_t* raw_ = nullptr;\n};\n",
     None),
    ("local-view-ok",
     "void f() {\n  BytesView v = GetView(1);\n  use(v);\n}\n",
     None),
    ("lambda-ref-escape",
     "void f(Pool* p) {\n  BytesView v = GetView(1);\n"
     "  p->Enqueue([&] { use(v); });\n}\n",
     "escapes through a lambda into Enqueue"),
    ("lambda-value-escape",
     "void f(Pool* p) {\n  BytesView v = GetView(1);\n"
     "  p->Enqueue([v] { use(v); });\n}\n",
     "escapes through a lambda into Enqueue"),
    ("lambda-escape-tagged-ok",
     "void f(Pool* p) {\n  BytesView v = GetView(1);\n"
     "  // hcs:owns-view(batch shared_ptr in the same capture pins the arena)\n"
     "  p->Enqueue([v] { use(v); });\n}\n",
     None),
    ("lambda-no-view-ok",
     "void f(Pool* p) {\n  BytesView v = GetView(1);\n  int count = 3;\n"
     "  p->Enqueue([count] { use(count); });\n  use(v);\n}\n",
     None),
    ("thread-view-escape",
     "void f() {\n  BytesView v = GetView(1);\n"
     "  std::thread([&] { use(v); }).detach();\n}\n",
     "escapes through a lambda into std::thread"),
    ("stored-callback-escape",
     "void C::Arm() {\n  BytesView v = GetView(1);\n"
     "  callback_ = [v] { use(v); };\n}\n",
     "stored callback 'callback_'"),
    ("return-view-of-local-bytes",
     "BytesView Leak() {\n  Bytes owned;\n"
     "  return BytesView(owned.data(), owned.size());\n}\n",
     "backed by local 'owned'"),
    ("return-view-via-reader",
     "BytesView Leak2() {\n  Bytes owned;\n  BufferReader reader(owned);\n"
     "  BytesView v = reader.GetView(4);\n  return v;\n}\n",
     "dies at this return"),
    ("return-view-param-ok",
     "BytesView Pass(BytesView v) {\n  return v;\n}\n",
     None),
    ("return-owned-bytes-ok",
     "Bytes Materialize() {\n  Bytes owned;\n  return owned;\n}\n",
     None),
    ("use-after-reset",
     "void f() {\n  Arena arena(16);\n  BytesView v = GetView(1);\n"
     "  arena.Reset();\n  use(v);\n}\n",
     "used after arena.Reset()"),
    ("use-after-recv",
     "void f(UdpRecvBatch& batch, int fd) {\n  BytesView v = GetView(1);\n"
     "  batch.Recv(fd, true);\n  use(v);\n}\n",
     "used after batch.Recv()"),
    ("use-after-reset-tagged-ok",
     "void f() {\n  Arena arena(16);\n  BytesView v = GetView(1);\n"
     "  arena.Reset();\n"
     "  // hcs:owns-view(v points into a different arena owned by caller)\n"
     "  use(v);\n}\n",
     None),
    ("redeclare-after-reset-ok",
     "void f() {\n  Arena arena(16);\n  arena.Reset();\n"
     "  BytesView v = GetView(1);\n  use(v);\n}\n",
     None),
    ("non-arena-reset-ok",
     "void f() {\n  BytesView v = GetView(1);\n  Metrics m;\n  m.Reset();\n"
     "  use(v);\n}\n",
     None),
    ("empty-owns-tag",
     "class Holder {\n  BytesView view_;  // hcs:owns-view()\n};\n",
     "empty"),
]


def run_checks_for_self_test(root):
    errors = []
    producers = build_view_producer_db(root)
    check_view_members(root, errors)
    check_lambda_escapes(root, producers, errors)
    check_return_of_local(root, producers, errors)
    check_use_across_reset(root, producers, errors)
    check_empty_tags(root, errors)
    return errors


def self_test():
    return lintlib.run_self_test_cases(
        "lint_views", SELF_TEST_HEADER, SELF_TEST_CASES,
        run_checks_for_self_test)


def main():
    if len(sys.argv) > 2:
        print(__doc__)
        return 2
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return self_test()
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    return run(root)


if __name__ == "__main__":
    sys.exit(main())
