#!/usr/bin/env python3
"""Static encode/decode symmetry lint for the wire boundary.

The HNS bridges heterogeneous systems by marshalling everything through
hand-paired Encode*/Decode* routines (src/wire, src/hns/wire_protocol.cc,
src/bindns/protocol.cc, src/bindns/record.cc). Those pairs drift silently:
add a field to Encode and forget Decode, or read fields out of write order,
and the bug only surfaces when a *differently built* peer parses the bytes —
exactly the heterogeneity boundary the paper's NSMs exist to bridge.

This lint cross-checks every pair statically:

  * every `X::Encode` / `X::EncodeTo` has a matching `X::Decode` /
    `X::DecodeFrom` in the scanned files, and vice versa;
  * within a pair, the sequence of XDR primitive operations must agree —
    `enc.PutString(...)` must be read back by `dec.GetString(...)` in the
    same position. Encode/Decode helper pairs (`EncodeRecords(&enc, ...)` /
    `DecodeRecords(&dec)`) and nested `EncodeTo(enc)` / `DecodeFrom(&dec)`
    calls match each other as single tokens;
  * functions with control flow (if/switch/loops) cannot be sequenced
    statically; for those the *set* of primitive kinds must agree, so a
    field type added on one side only is still caught;
  * every Decode side must consume its decoder's error state before it can
    return OK: a statement calling `dec.Get*(...)` must propagate the
    Result (HCS_ASSIGN_OR_RETURN / HCS_RETURN_IF_ERROR / return) or bind it
    to a variable in a body that visibly checks `.ok()`/`.status()`. A
    discarded Get is a decode error that silently becomes OK-with-garbage.
    Same control-flow caveat as the kind check: the consumption test is
    set-level per statement/body, not path-sensitive;
  * every two-sided pair must be exercised by the deterministic
    truncation/corruption sweep (tests/decode_sweep_test.cc): the class
    name has to appear there, so a newly added message type cannot ship
    without sweep coverage.

Exit status 0 = clean; 1 = violations (printed one per line); 2 = usage.

Usage: lint_wire.py [repo_root]
       lint_wire.py --list-pairs [repo_root]   (print the discovered pairs)

The stripping / brace-matching plumbing lives in lintlib.py, shared by
every lint in tools/.
"""

import os
import re
import sys

from lintlib import line_of, match_brace_block, strip_comments_and_strings

# Files whose Encode/Decode pairs are checked. xdr.cc defines the primitive
# layer itself and is deliberately excluded.
SCAN_FILES = [
    "src/wire/value.cc",
    "src/wire/idl.cc",
    "src/wire/courier.cc",
    "src/wire/buffer.cc",
    "src/hns/wire_protocol.cc",
    "src/bindns/protocol.cc",
    "src/bindns/record.cc",
    "src/rpc/context.cc",
    "src/ch/protocol.cc",
    "src/workload/trace.cc",
]

# The deterministic truncation/corruption sweep; every two-sided pair found
# here must be covered there (checked in main()).
SWEEP_TEST = "tests/decode_sweep_test.cc"

ENCODE_NAMES = {"Encode": "Decode", "EncodeTo": "DecodeFrom"}
DECODE_NAMES = {v: k for k, v in ENCODE_NAMES.items()}

# Primitive kinds that must mirror each other (Put<k> on the encode side,
# Get<k> on the decode side). GetFixedOpaque takes an explicit length, so
# both spellings map to the same token.
KIND_ALIASES = {
    "U32": "Uint32",
    "U64": "Uint64",
}


def extract_functions(text):
    """Yields (class, method, body, line) for Encode/Decode definitions."""
    pattern = re.compile(
        r"\b(\w+)::(Encode|EncodeTo|Decode|DecodeFrom)\s*\([^)]*\)[^{;]*\{"
    )
    for m in pattern.finditer(text):
        start = m.end() - 1
        body = text[start:match_brace_block(text, start)]
        yield m.group(1), m.group(2), body, line_of(text, m.start())


OP_PATTERNS = [
    # enc.PutString(...) / enc->PutUint32(...) -> ('prim', kind)
    (re.compile(r"\benc\w*\s*(?:\.|->)\s*Put(\w+)\s*\("), "put"),
    (re.compile(r"\bdec\w*\s*(?:\.|->)\s*Get(\w+)\s*\("), "get"),
    # Helper pairs: EncodeRecords(&enc, ...) / DecodeRecords(&dec) -> kind "::Records"
    (re.compile(r"\bEncode(?!To\b)(\w+)\s*\(\s*&?enc"), "put-helper"),
    (re.compile(r"\bDecode(?!From\b)(\w+)\s*\(\s*&?dec"), "get-helper"),
    # Nested records: x.EncodeTo(enc) / T::DecodeFrom(dec) -> kind "::Nested"
    (re.compile(r"\bEncodeTo\s*\(\s*&?enc"), "put-nested"),
    (re.compile(r"\bDecodeFrom\s*\(\s*&?dec"), "get-nested"),
]


def op_sequence(body, side):
    """Extracts the ordered primitive-operation tokens for one side."""
    want = {"put", "put-helper", "put-nested"} if side == "put" else {
        "get", "get-helper", "get-nested"}
    ops = []
    for pattern, tag in OP_PATTERNS:
        if tag not in want:
            continue
        for m in pattern.finditer(body):
            if tag in ("put", "get"):
                kind = KIND_ALIASES.get(m.group(1), m.group(1))
            elif tag in ("put-helper", "get-helper"):
                kind = "::" + m.group(1)
            else:
                kind = "::Nested"
            ops.append((m.start(), kind))
    ops.sort()
    return [kind for _, kind in ops]


BRANCHY = re.compile(r"\b(if|switch|for|while)\s*\(")

GET_CALL = re.compile(r"(?:\.|->)\s*Get\w+\s*\(")
CONSUMES = re.compile(r"HCS_ASSIGN_OR_RETURN|HCS_RETURN_IF_ERROR|\breturn\b")
CHECKS_STATE = re.compile(r"\.\s*(?:ok|status)\s*\(")


def check_decoder_error_state(cls, decode_name, body, rel, line, errors):
    """Flags Get* statements whose Result can be lost on the way to OK."""
    body_checks = bool(CHECKS_STATE.search(body))
    offset = 0
    for stmt in body.split(";"):
        stmt_line = line + body.count("\n", 0, offset)
        offset += len(stmt) + 1
        if not GET_CALL.search(stmt):
            continue
        if CONSUMES.search(stmt):
            continue
        if "=" in stmt and body_checks:
            # Bound to a variable in a body that checks ok()/status()
            # somewhere (set-level; branches are not followed).
            continue
        errors.append(
            f"{rel}:{stmt_line}: {cls}::{decode_name} discards a decoder "
            f"Get* Result; a failed read can still return OK")


def main():
    argv = sys.argv[1:]
    list_pairs = "--list-pairs" in argv
    argv = [a for a in argv if a != "--list-pairs"]
    root = argv[0] if argv else "."
    if len(argv) > 1:
        print(__doc__)
        return 2

    errors = []
    # (class, base-pair-name) -> {"put": (seq, branchy, file, line), "get": ...}
    pairs = {}

    for rel in SCAN_FILES:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            errors.append(f"{rel}: file listed in SCAN_FILES does not exist")
            continue
        with open(path, encoding="utf-8") as f:
            text = strip_comments_and_strings(f.read())
        for cls, method, body, line in extract_functions(text):
            side = "put" if method in ENCODE_NAMES else "get"
            pair_name = method if side == "put" else DECODE_NAMES[method]
            key = (cls, pair_name)
            seq = op_sequence(body, side)
            branchy = bool(BRANCHY.search(body))
            if side == "get":
                check_decoder_error_state(cls, method, body, rel, line, errors)
            entry = pairs.setdefault(key, {})
            if side in entry:
                # Overload (e.g. Decode(Bytes) delegating to DecodeFrom):
                # keep the richer definition, it is the one doing the reads.
                if len(seq) <= len(entry[side][0]):
                    continue
            entry[side] = (seq, branchy, rel, line)

    for (cls, pair_name), entry in sorted(pairs.items()):
        decode_name = ENCODE_NAMES[pair_name]
        if "put" not in entry:
            seq, _, rel, line = entry["get"]
            # A decoder whose encoder lives out of scan scope is only an
            # error when it actually reads primitives (pure delegators pass).
            if seq:
                errors.append(
                    f"{rel}:{line}: {cls}::{decode_name} has no matching "
                    f"{cls}::{pair_name} in the scanned files")
            continue
        if "get" not in entry:
            seq, _, rel, line = entry["put"]
            if seq:
                errors.append(
                    f"{rel}:{line}: {cls}::{pair_name} has no matching "
                    f"{cls}::{decode_name} in the scanned files")
            continue

        put_seq, put_branchy, put_file, put_line = entry["put"]
        get_seq, get_branchy, get_file, get_line = entry["get"]
        where = f"{put_file}:{put_line} / {get_file}:{get_line}"

        if put_branchy or get_branchy:
            # Control flow: order is not statically comparable, but the kinds
            # used must agree (a field type written but never read, or read
            # but never written, is still drift).
            missing = set(put_seq) - set(get_seq)
            extra = set(get_seq) - set(put_seq)
            if missing:
                errors.append(
                    f"{where}: {cls}::{pair_name} writes kinds "
                    f"{sorted(missing)} that {cls}::{decode_name} never reads")
            if extra:
                errors.append(
                    f"{where}: {cls}::{decode_name} reads kinds "
                    f"{sorted(extra)} that {cls}::{pair_name} never writes")
            continue

        if put_seq != get_seq:
            errors.append(
                f"{where}: field order mismatch in {cls}: "
                f"{pair_name} writes {put_seq} but {decode_name} reads {get_seq}")

    two_sided = sorted({cls for (cls, _), e in pairs.items()
                        if "put" in e and "get" in e})
    if list_pairs:
        for cls in two_sided:
            print(cls)
        return 0

    # Sweep coverage: every two-sided pair must appear in the truncation/
    # corruption sweep so hostile-input totality is tested, not assumed.
    sweep_path = os.path.join(root, SWEEP_TEST)
    if not os.path.exists(sweep_path):
        errors.append(f"{SWEEP_TEST}: sweep test is missing; every "
                      f"encode/decode pair must be sweep-covered")
    else:
        with open(sweep_path, encoding="utf-8") as f:
            sweep_text = f.read()
        for cls in two_sided:
            if not re.search(rf"\b{cls}\b", sweep_text):
                errors.append(
                    f"{SWEEP_TEST}: encode/decode pair {cls} has no "
                    f"truncation/corruption sweep coverage")

    if errors:
        print(f"lint_wire: {len(errors)} violation(s):")
        for err in errors:
            print(f"  {err}")
        return 1
    print(f"lint_wire: {len(pairs)} encode/decode pairs symmetric across "
          f"{len(SCAN_FILES)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
