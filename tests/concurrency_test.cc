// Concurrency suite for the real-transport resolution path (ctest label
// `concurrency`; run it under -DHCS_SANITIZE=thread). Three storms:
//
//   1. N threads hammering FindNSM through the composite binding cache
//      while another thread loops RegisterNsm/UnregisterNsm — the
//      invalidation hooks racing the fast path, over real UDP sockets.
//   2. The sharded LRU under a mixed Put/Get/Remove load, checked against
//      HnsCache::CheckInvariants afterwards.
//   3. Multi-threaded logging through the hcs::Mutex sink — no torn lines.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "src/bindns/server.h"
#include "src/common/logging.h"
#include "src/common/rand.h"
#include "src/common/sync.h"
#include "src/hns/hns.h"
#include "src/hns/name.h"
#include "src/rpc/udp_transport.h"
#include "src/sim/world.h"
#include "src/wire/value.h"

namespace hcs {
namespace {

// A linked HostAddress NSM answering from a fixed table — bounds the
// FindNSM recursion without touching the network, exactly how production
// deployments link their HostAddress NSMs (§3).
class FixedAddressNsm : public Nsm {
 public:
  FixedAddressNsm(NsmInfo info, uint32_t address)
      : info_(std::move(info)), address_(address) {}

  const NsmInfo& info() const override { return info_; }

  Result<WireValue> Query(const HnsName& name, const WireValue&) override {
    return RecordBuilder().U32("address", address_).Str("host", name.individual).Build();
  }

 private:
  NsmInfo info_;
  uint32_t address_;
};

NsmInfo StormNsmInfo() {
  NsmInfo info;
  info.nsm_name = "StormNSM";
  info.query_class = kQueryClassHrpcBinding;
  info.ns_name = "UW-BIND";
  info.host = "nsmhost";
  info.host_context = "hostctx";
  info.program = 4242;
  info.version = 1;
  info.port = 999;
  return info;
}

// FindNSM storm vs. a Register/Unregister loop, sharing one Hns (cache
// shards, singleflight table, composite cache, RpcClient) over real UDP.
// Correctness bar: every reader sees either a fully-consistent handle or a
// clean failure, and the system converges once registration settles.
TEST(ConcurrencyTest, CompositeInvalidationRacesFindNsm) {
  // The modified-BIND meta authority, served from one real UDP socket. Its
  // single serve thread is the only thread touching `world` after setup.
  World world;
  ASSERT_TRUE(world.network().AddHost("metahost", MachineType::kMicroVax, OsType::kUnix).ok());
  BindServerOptions meta_options;
  meta_options.allow_dynamic_update = true;
  meta_options.allow_unspecified_type = true;
  BindServer* meta_bind = BindServer::InstallOn(&world, "metahost", meta_options).value();
  ASSERT_TRUE(meta_bind->AddZone(MetaStore::kMetaZoneOrigin).ok());

  UdpServerHost server_host;
  Result<uint16_t> port = server_host.Serve(meta_bind->rpc(), 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  HnsOptions options;
  options.meta_server_host = "metahost";
  options.composite_cache = true;
  options.cache.negative_ttl_seconds = 1;
  Hns hns(/*world=*/nullptr, "client", &transport, options);
  hns.meta().set_meta_port(*port);

  // Link the HostAddress NSM and register the confederation's meta data.
  NsmInfo addr_info;
  addr_info.nsm_name = "AddrNSM";
  addr_info.query_class = kQueryClassHostAddress;
  addr_info.ns_name = "UW-BIND";
  addr_info.host = "metahost";
  addr_info.host_context = "hostctx";
  ASSERT_TRUE(hns.LinkNsm(std::make_shared<FixedAddressNsm>(addr_info, 0x7f000001)).ok());

  NameServiceInfo ns_info;
  ns_info.name = "UW-BIND";
  ns_info.type = "BIND";
  ASSERT_TRUE(hns.RegisterNameService(ns_info).ok());
  ASSERT_TRUE(hns.RegisterContext("stormctx", "UW-BIND").ok());
  ASSERT_TRUE(hns.RegisterContext("hostctx", "UW-BIND").ok());
  ASSERT_TRUE(hns.RegisterNsm(addr_info).ok());
  NsmInfo storm_info = StormNsmInfo();
  ASSERT_TRUE(hns.RegisterNsm(storm_info).ok());

  HnsName name;
  name.context = "stormctx";
  name.individual = "anything";

  // Prove the happy path before the storm: a quiescent FindNSM must compose
  // the full handle. During the storm a success is not guaranteed — the
  // first Unregister may land before any read and negatively cache the
  // mapping for the storm's whole duration — so the storm itself only
  // asserts that no read ever observes a *torn* handle.
  {
    Result<NsmHandle> warm = hns.FindNsm(name, kQueryClassHrpcBinding);
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ(warm->nsm_name, "StormNSM");
    EXPECT_EQ(warm->binding.program, 4242u);
    EXPECT_EQ(warm->binding.port, 999);
    EXPECT_EQ(warm->binding.address, 0x7f000001u);
  }

  constexpr int kReaders = 4;
  constexpr int kReadsPerThread = 250;
  std::atomic<int> ok_results{0};
  std::atomic<int> clean_failures{0};
  std::atomic<int> wrong_results{0};
  std::atomic<bool> writer_done{false};

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        Result<NsmHandle> handle = hns.FindNsm(name, kQueryClassHrpcBinding);
        if (handle.ok()) {
          // A successful handle must be internally consistent — never a
          // half-invalidated composite entry.
          if (handle->nsm_name == "StormNSM" && handle->binding.program == 4242 &&
              handle->binding.port == 999 && handle->binding.address == 0x7f000001) {
            ++ok_results;
          } else {
            ++wrong_results;
          }
        } else {
          ++clean_failures;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int round = 0; round < 20; ++round) {
      EXPECT_TRUE(hns.UnregisterNsm("UW-BIND", kQueryClassHrpcBinding).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      EXPECT_TRUE(hns.RegisterNsm(storm_info).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    writer_done = true;
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(wrong_results.load(), 0) << "a FindNSM result was torn by invalidation";
  EXPECT_EQ(ok_results.load() + clean_failures.load(), kReaders * kReadsPerThread);

  // Once registration settles the system must converge to success within
  // the negative TTL (1 s) plus slack.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool converged = false;
  while (std::chrono::steady_clock::now() < deadline) {
    Result<NsmHandle> handle = hns.FindNsm(name, kQueryClassHrpcBinding);
    if (handle.ok() && handle->nsm_name == "StormNSM") {
      converged = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(converged) << "FindNSM never recovered after the registration storm";

  EXPECT_TRUE(hns.cache().CheckInvariants().ok());
  server_host.StopAll();
}

TEST(ConcurrencyTest, ShardedCacheSurvivesMixedStormIntact) {
  HnsCacheOptions options;
  options.shards = 4;
  options.max_bytes = 16 * 1024;  // force evictions under the storm
  HnsCache cache(/*world=*/nullptr, CacheMode::kDemarshalled, options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "key-" + std::to_string(rng.Uniform(200));
        switch (rng.Uniform(5)) {
          case 0:
            cache.Put(key, WireValue::OfString(std::string(64, 'v')), /*ttl_seconds=*/60);
            break;
          case 1:
            cache.PutNegative(key);
            break;
          case 2:
            cache.Remove(key);
            break;
          default:
            (void)cache.Lookup(key);  // hcs:ignore-status(stress loop; absence of data races is the assertion)
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  Status invariants = cache.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants;
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.bytes, cache.ApproximateBytes());
  EXPECT_GT(stats.inserts, 0u);
}

TEST(ConcurrencyTest, LogLinesNeverTearAcrossThreads) {
  // Divert fd 2 to a temp file for the duration of the storm.
  FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  int saved_stderr = dup(2);
  ASSERT_GE(saved_stderr, 0);
  ASSERT_GE(dup2(fileno(capture), 2), 0);
  LogLevel saved_threshold = GetLogThreshold();
  SetLogThreshold(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        HCS_LOG(Info) << "interleave-marker t=" << t << " i=" << i << " end";
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  SetLogThreshold(saved_threshold);
  fflush(stderr);
  dup2(saved_stderr, 2);
  close(saved_stderr);

  std::fseek(capture, 0, SEEK_SET);
  std::string captured;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), capture)) > 0) {
    captured.append(buffer, n);
  }
  std::fclose(capture);

  // Every emitted line must be whole: prefix, marker, and terminator with
  // nothing interleaved. Count both well-formed lines and any fragment of
  // the marker that escaped the pattern.
  std::regex whole_line(R"(\[I [^\]]+\] interleave-marker t=\d+ i=\d+ end)");
  size_t well_formed = 0;
  size_t marker_mentions = 0;
  size_t start = 0;
  while (start < captured.size()) {
    size_t end = captured.find('\n', start);
    if (end == std::string::npos) {
      end = captured.size();
    }
    std::string line = captured.substr(start, end - start);
    if (line.find("interleave-marker") != std::string::npos) {
      ++marker_mentions;
      if (std::regex_match(line, whole_line)) {
        ++well_formed;
      }
    }
    start = end + 1;
  }
  EXPECT_EQ(well_formed, static_cast<size_t>(kThreads * kLinesPerThread));
  EXPECT_EQ(marker_mentions, well_formed) << "some log line was torn mid-write";
}

}  // namespace
}  // namespace hcs
