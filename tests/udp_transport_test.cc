// Real-socket tests: the same RpcServer objects served over 127.0.0.1 UDP,
// called through the unmodified RpcClient — the HRPC transport component
// swapped for a real one.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/bindns/protocol.h"
#include "src/bindns/record.h"
#include "src/bindns/resolver.h"
#include "src/bindns/server.h"
#include "src/hns/meta_store.h"
#include "src/rpc/client.h"
#include "src/rpc/ports.h"
#include "src/rpc/server.h"
#include "src/rpc/udp_transport.h"
#include "src/wire/xdr.h"

namespace hcs {
namespace {

HrpcBinding UdpBinding(uint16_t port, uint32_t program, ControlKind control) {
  HrpcBinding b;
  b.service_name = "udp-test";
  b.host = "localhost";
  b.port = port;
  b.program = program;
  b.version = 2;
  b.control = control;
  b.transport = TransportKind::kUdp;
  return b;
}

TEST(UdpTransportTest, EndToEndEchoOverAllControlProtocols) {
  UdpServerHost host;
  UdpTransport transport;
  RpcClient client(/*world=*/nullptr, "localclient", &transport);

  for (ControlKind kind : {ControlKind::kSunRpc, ControlKind::kCourier, ControlKind::kRaw}) {
    SCOPED_TRACE(ControlKindName(kind));
    auto server = std::make_unique<RpcServer>(kind, "udp-echo");
    server->RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> {
      Bytes out = args;
      out.push_back(0x42);
      return out;
    });
    Result<uint16_t> port = host.Serve(server.get(), 0);
    ASSERT_TRUE(port.ok()) << port.status();

    Result<Bytes> reply = client.Call(UdpBinding(*port, 7, kind), 1, Bytes{1, 2, 3});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(*reply, (Bytes{1, 2, 3, 0x42}));

    // Keep the server alive until the host stops.
    static std::vector<std::unique_ptr<RpcServer>> keepalive;
    keepalive.push_back(std::move(server));
  }
  host.StopAll();
}

TEST(UdpTransportTest, ErrorsRoundTripOverRealSockets) {
  UdpServerHost host;
  RpcServer server(ControlKind::kSunRpc, "udp-fail");
  server.RegisterProcedure(7, 1, [](const Bytes&) -> Result<Bytes> {
    return NotFoundError("nothing here");
  });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient client(nullptr, "localclient", &transport);
  Result<Bytes> reply = client.Call(UdpBinding(*port, 7, ControlKind::kSunRpc), 1, Bytes{});
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reply.status().message(), "nothing here");
  host.StopAll();
}

TEST(UdpTransportTest, DeadPortTimesOut) {
  UdpTransport transport(/*timeout_ms=*/200);
  RpcClient client(nullptr, "localclient", &transport);
  // Nothing listens here; ICMP refusal may surface as UNAVAILABLE, silence
  // as TIMEOUT — both are acceptable failure classes.
  Result<Bytes> reply =
      client.Call(UdpBinding(1, 7, ControlKind::kRaw), 1, Bytes{1});
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().code() == StatusCode::kTimeout ||
              reply.status().code() == StatusCode::kUnavailable)
      << reply.status();
}

TEST(UdpTransportTest, ConcurrentClientsAreServedCorrectly) {
  UdpServerHost host;
  RpcServer server(ControlKind::kRaw, "udp-concurrent");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> {
    return args;  // echo
  });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      UdpTransport transport;
      RpcClient client(nullptr, "localclient", &transport);
      for (int i = 0; i < kCallsPerThread; ++i) {
        XdrEncoder enc;
        enc.PutUint32(static_cast<uint32_t>(t * 1000 + i));
        Bytes args = enc.Take();
        Result<Bytes> reply = client.Call(UdpBinding(*port, 7, ControlKind::kRaw), 1, args);
        if (!reply.ok() || *reply != args) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  host.StopAll();
}

// A fake modified-BIND on a real socket. Every answer carries {"ns": ...}
// and costs `delay_ms` of real time; NXDOMAIN names contain "missing".
class FakeMetaBind {
 public:
  explicit FakeMetaBind(int delay_ms)
      : server_(ControlKind::kRaw, "fake-meta-bind") {
    server_.RegisterProcedure(
        kBindProgram, kBindProcQuery, [this, delay_ms](const Bytes& args) -> Result<Bytes> {
          ++queries_;
          HCS_ASSIGN_OR_RETURN(BindQueryRequest request, BindQueryRequest::Decode(args));
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
          BindQueryResponse response;
          if (request.name.find("missing") != std::string::npos) {
            response.rcode = Rcode::kNxDomain;
          } else {
            response.rcode = Rcode::kNoError;
            response.answers = UnspecRecordsFromValue(
                request.name, RecordBuilder().Str("ns", "UW-BIND").Build(), 300);
          }
          return response.Encode();
        });
  }

  Result<uint16_t> Serve() { return host_.Serve(&server_, 0); }
  int queries() const { return queries_.load(); }
  void Stop() { host_.StopAll(); }

 private:
  RpcServer server_;
  UdpServerHost host_;
  std::atomic<int> queries_{0};
};

TEST(UdpTransportTest, MetaStoreCoalescesConcurrentMisses) {
  FakeMetaBind upstream(/*delay_ms=*/100);
  Result<uint16_t> port = upstream.Serve();
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient rpc(/*world=*/nullptr, "localclient", &transport);
  HnsCache cache(/*world=*/nullptr, CacheMode::kDemarshalled);
  MetaStore meta(&rpc, "localhost", "", &cache);
  meta.set_meta_port(*port);

  constexpr int kFollowers = 7;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // The leader goes first; the followers arrive while its fetch is held up
  // in the 100 ms upstream, so every one of them must wait, not re-fetch.
  threads.emplace_back([&] {
    Result<std::string> ns = meta.ContextToNameService("SharedContext");
    if (!ns.ok() || *ns != "UW-BIND") ++failures;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (int t = 0; t < kFollowers; ++t) {
    threads.emplace_back([&] {
      Result<std::string> ns = meta.ContextToNameService("SharedContext");
      if (!ns.ok() || *ns != "UW-BIND") ++failures;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  upstream.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(upstream.queries(), 1) << "all concurrent misses share one upstream fetch";
  EXPECT_EQ(meta.remote_lookups(), 1u);
  EXPECT_EQ(cache.stats().coalesced_misses, static_cast<uint64_t>(kFollowers));
}

TEST(UdpTransportTest, MetaStoreNegativeCachingOverRealSockets) {
  FakeMetaBind upstream(/*delay_ms=*/0);
  Result<uint16_t> port = upstream.Serve();
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient rpc(/*world=*/nullptr, "localclient", &transport);
  HnsCache cache(/*world=*/nullptr, CacheMode::kDemarshalled);
  MetaStore meta(&rpc, "localhost", "", &cache);
  meta.set_meta_port(*port);

  EXPECT_EQ(meta.ContextToNameService("missing-context").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(meta.ContextToNameService("missing-context").status().code(),
            StatusCode::kNotFound);
  upstream.Stop();
  EXPECT_EQ(upstream.queries(), 1) << "the repeat NotFound is a negative cache hit";
  EXPECT_EQ(cache.stats().negative_hits, 1u);
}

TEST(UdpTransportTest, CacheTtlRunsOnRealClockWithoutWorld) {
  // With no simulated world the cache must still expire entries — on the
  // monotonic real clock.
  HnsCache cache(/*world=*/nullptr, CacheMode::kDemarshalled);
  cache.Put("k", WireValue::OfUint32(7), /*ttl_seconds=*/1);
  EXPECT_TRUE(cache.Get("k").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  EXPECT_FALSE(cache.Get("k").ok()) << "entry outlived its TTL on the real clock";
  EXPECT_EQ(cache.stats().expirations, 1u);
}

TEST(UdpTransportTest, BindServerWorksOverRealSockets) {
  // A whole simulated subsystem served over real UDP: the BIND server still
  // charges its (now unobserved) virtual costs, and answers correctly.
  World world;
  ASSERT_TRUE(world.network().AddHost("ns", MachineType::kMicroVax, OsType::kUnix).ok());
  BindServer* bind_server = BindServer::InstallOn(&world, "ns", BindServerOptions{}).value();
  Zone* zone = bind_server->AddZone("cs.washington.edu").value();
  ASSERT_TRUE(zone->Add(ResourceRecord::MakeA("fiji.cs.washington.edu", 0xaa)).ok());

  UdpServerHost host;
  Result<uint16_t> port = host.Serve(bind_server->rpc(), 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient rpc(nullptr, "localclient", &transport);
  BindResolverOptions options;
  options.server_host = "localhost";
  options.server_port = *port;
  BindResolver resolver(&rpc, options);
  EXPECT_EQ(resolver.LookupAddress("fiji.cs.washington.edu").value(), 0xaau);
  host.StopAll();
}

}  // namespace
}  // namespace hcs
