// Real-socket tests: the same RpcServer objects served over 127.0.0.1 UDP,
// called through the unmodified RpcClient — the HRPC transport component
// swapped for a real one.

#include <gtest/gtest.h>

#include "src/bindns/resolver.h"
#include "src/bindns/server.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"
#include "src/rpc/udp_transport.h"
#include "src/wire/xdr.h"

namespace hcs {
namespace {

HrpcBinding UdpBinding(uint16_t port, uint32_t program, ControlKind control) {
  HrpcBinding b;
  b.service_name = "udp-test";
  b.host = "localhost";
  b.port = port;
  b.program = program;
  b.version = 2;
  b.control = control;
  b.transport = TransportKind::kUdp;
  return b;
}

TEST(UdpTransportTest, EndToEndEchoOverAllControlProtocols) {
  UdpServerHost host;
  UdpTransport transport;
  RpcClient client(/*world=*/nullptr, "localclient", &transport);

  for (ControlKind kind : {ControlKind::kSunRpc, ControlKind::kCourier, ControlKind::kRaw}) {
    SCOPED_TRACE(ControlKindName(kind));
    auto server = std::make_unique<RpcServer>(kind, "udp-echo");
    server->RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> {
      Bytes out = args;
      out.push_back(0x42);
      return out;
    });
    Result<uint16_t> port = host.Serve(server.get(), 0);
    ASSERT_TRUE(port.ok()) << port.status();

    Result<Bytes> reply = client.Call(UdpBinding(*port, 7, kind), 1, Bytes{1, 2, 3});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(*reply, (Bytes{1, 2, 3, 0x42}));

    // Keep the server alive until the host stops.
    static std::vector<std::unique_ptr<RpcServer>> keepalive;
    keepalive.push_back(std::move(server));
  }
  host.StopAll();
}

TEST(UdpTransportTest, ErrorsRoundTripOverRealSockets) {
  UdpServerHost host;
  RpcServer server(ControlKind::kSunRpc, "udp-fail");
  server.RegisterProcedure(7, 1, [](const Bytes&) -> Result<Bytes> {
    return NotFoundError("nothing here");
  });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient client(nullptr, "localclient", &transport);
  Result<Bytes> reply = client.Call(UdpBinding(*port, 7, ControlKind::kSunRpc), 1, Bytes{});
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reply.status().message(), "nothing here");
  host.StopAll();
}

TEST(UdpTransportTest, DeadPortTimesOut) {
  UdpTransport transport(/*timeout_ms=*/200);
  RpcClient client(nullptr, "localclient", &transport);
  // Nothing listens here; ICMP refusal may surface as UNAVAILABLE, silence
  // as TIMEOUT — both are acceptable failure classes.
  Result<Bytes> reply =
      client.Call(UdpBinding(1, 7, ControlKind::kRaw), 1, Bytes{1});
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().code() == StatusCode::kTimeout ||
              reply.status().code() == StatusCode::kUnavailable)
      << reply.status();
}

TEST(UdpTransportTest, ConcurrentClientsAreServedCorrectly) {
  UdpServerHost host;
  RpcServer server(ControlKind::kRaw, "udp-concurrent");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> {
    return args;  // echo
  });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      UdpTransport transport;
      RpcClient client(nullptr, "localclient", &transport);
      for (int i = 0; i < kCallsPerThread; ++i) {
        XdrEncoder enc;
        enc.PutUint32(static_cast<uint32_t>(t * 1000 + i));
        Bytes args = enc.Take();
        Result<Bytes> reply = client.Call(UdpBinding(*port, 7, ControlKind::kRaw), 1, args);
        if (!reply.ok() || *reply != args) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  host.StopAll();
}

TEST(UdpTransportTest, BindServerWorksOverRealSockets) {
  // A whole simulated subsystem served over real UDP: the BIND server still
  // charges its (now unobserved) virtual costs, and answers correctly.
  World world;
  ASSERT_TRUE(world.network().AddHost("ns", MachineType::kMicroVax, OsType::kUnix).ok());
  BindServer* bind_server = BindServer::InstallOn(&world, "ns", BindServerOptions{}).value();
  Zone* zone = bind_server->AddZone("cs.washington.edu").value();
  ASSERT_TRUE(zone->Add(ResourceRecord::MakeA("fiji.cs.washington.edu", 0xaa)).ok());

  UdpServerHost host;
  Result<uint16_t> port = host.Serve(bind_server->rpc(), 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient rpc(nullptr, "localclient", &transport);
  BindResolverOptions options;
  options.server_host = "localhost";
  options.server_port = *port;
  BindResolver resolver(&rpc, options);
  EXPECT_EQ(resolver.LookupAddress("fiji.cs.washington.edu").value(), 0xaau);
  host.StopAll();
}

}  // namespace
}  // namespace hcs
