// Unit tests for the session layer: colocation arrangements, remote HNS and
// NSM paths, the agent, and Import.

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/hns/import.h"
#include "src/rpc/ports.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

HnsName SunName() {
  return HnsName::Parse(std::string(kContextBindBinding) + "!" + kSunServerHost).value();
}

TEST(SessionTest, RemoteHnsFindNsmMatchesLinkedHns) {
  Testbed bed;
  ClientSetup linked = bed.MakeClient(Arrangement::kAllLinked);
  ClientSetup remote = bed.MakeClient(Arrangement::kAllRemote);

  Result<NsmHandle> local_handle = linked.session->FindNsm(SunName(), kQueryClassHrpcBinding);
  Result<NsmHandle> remote_handle = remote.session->FindNsm(SunName(), kQueryClassHrpcBinding);
  ASSERT_TRUE(local_handle.ok()) << local_handle.status();
  ASSERT_TRUE(remote_handle.ok()) << remote_handle.status();
  EXPECT_EQ(local_handle->nsm_name, remote_handle->nsm_name);
  EXPECT_EQ(local_handle->binding, remote_handle->binding);
  EXPECT_FALSE(remote_handle->is_linked());
}

TEST(SessionTest, RemoteHnsPrefersClientLinkedNsms) {
  Testbed bed;
  // Row 3: [HNS] [Client, NSMs] — the remote HNS designates the NSM, the
  // client then uses its linked instance.
  ClientSetup client = bed.MakeClient(Arrangement::kRemoteHns);
  Result<NsmHandle> handle = client.session->FindNsm(SunName(), kQueryClassHrpcBinding);
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_TRUE(handle->is_linked());
}

TEST(SessionTest, AgentAnswersWholeQueries) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAgent);
  // FindNSM alone is not part of the agent interface.
  EXPECT_EQ(client.session->FindNsm(SunName(), kQueryClassHrpcBinding).status().code(),
            StatusCode::kUnimplemented);

  WireValue args = RecordBuilder().Str("service", kDesiredService).Build();
  Result<WireValue> result = client.session->Query(SunName(), kQueryClassHrpcBinding, args);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(HrpcBinding::FromWire(*result).value().port, kDesiredServicePort);
}

TEST(SessionTest, AgentPropagatesErrors) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAgent);
  HnsName bad = HnsName::Parse("NoSuchContext!x").value();
  EXPECT_EQ(client.session->Query(bad, kQueryClassHostAddress, WireValue::OfRecord({}))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(SessionTest, RemoteNsmPathGoesOverTheWire) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllRemote);
  client.FlushAll();
  bed.world().stats().Clear();
  WireValue args = RecordBuilder().Str("service", kDesiredService).Build();
  Result<WireValue> result = client.session->Query(SunName(), kQueryClassHrpcBinding, args);
  ASSERT_TRUE(result.ok()) << result.status();

  std::string hns_endpoint = AsciiToLower(std::string(kHnsServerHost)) + ":" +
                             std::to_string(kHnsServerPort);
  std::string nsm_endpoint =
      AsciiToLower(std::string(kNsmServerHost)) + ":" + std::to_string(711);
  EXPECT_EQ(bed.world().stats().messages_per_endpoint[hns_endpoint], 1u);
  EXPECT_EQ(bed.world().stats().messages_per_endpoint[nsm_endpoint], 1u);
}

TEST(SessionTest, DuplicateNsmLinkRejected) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  std::vector<std::shared_ptr<Nsm>> extra = bed.MakeLinkedNsms(kClientHost);
  EXPECT_EQ(client.session->LinkNsm(extra.front()).code(), StatusCode::kAlreadyExists);
}

TEST(ImporterTest, ParsesTextualHostNames) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Importer importer(client.session.get());
  Result<HrpcBinding> ok =
      importer.Import(kDesiredService, "HRPCBinding-BIND!fiji.cs.washington.edu");
  EXPECT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(importer.Import(kDesiredService, "no-separator").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ImporterTest, UnknownServiceFailsCleanly) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Importer importer(client.session.get());
  EXPECT_EQ(importer.Import("NoSuchService", SunName()).status().code(),
            StatusCode::kNotFound);
}

TEST(ResolveManyTest, DeduplicatesSharedContextQueryClassPairs) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  client.FlushAll();
  client.hns_cache->ResetStats();

  // Five requests, one unique (context, query class) pair — context case
  // differences must not defeat the dedupe.
  std::vector<HnsSession::ResolveRequest> requests(5);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].name = SunName();
    requests[i].query_class = kQueryClassHrpcBinding;
  }
  requests[2].name.context = AsciiToLower(requests[2].name.context);

  std::vector<Result<NsmHandle>> results = client.session->ResolveMany(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (const Result<NsmHandle>& result : results) {
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->nsm_name, results.front()->nsm_name);
    EXPECT_EQ(result->binding, results.front()->binding);
  }
  // One cold resolution reads each meta record exactly once; had the
  // duplicates re-run FindNSM they would show up as record-cache hits.
  EXPECT_EQ(client.hns_cache->stats().hits, 0u);
  EXPECT_GT(client.hns_cache->stats().misses, 0u);
}

TEST(ResolveManyTest, RemoteModeSendsOneFindNsmPerUniquePair) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllRemote);
  client.FlushAll();
  bed.world().stats().Clear();

  std::vector<HnsSession::ResolveRequest> requests(4);
  for (HnsSession::ResolveRequest& request : requests) {
    request.name = SunName();
    request.query_class = kQueryClassHrpcBinding;
  }
  std::vector<Result<NsmHandle>> results = client.session->ResolveMany(requests);
  for (const Result<NsmHandle>& result : results) {
    EXPECT_TRUE(result.ok()) << result.status();
  }
  std::string hns_endpoint = AsciiToLower(std::string(kHnsServerHost)) + ":" +
                             std::to_string(kHnsServerPort);
  EXPECT_EQ(bed.world().stats().messages_per_endpoint[hns_endpoint], 1u)
      << "four duplicate requests, one wire exchange";
}

TEST(ResolveManyTest, ResultsArePositionalAndErrorsAreIsolated) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  std::vector<HnsSession::ResolveRequest> requests(3);
  requests[0].name = SunName();
  requests[0].query_class = kQueryClassHrpcBinding;
  requests[1].name = HnsName::Parse("NoSuchContext!x").value();
  requests[1].query_class = kQueryClassHostAddress;
  requests[2].name = SunName();
  requests[2].query_class = kQueryClassHrpcBinding;

  std::vector<Result<NsmHandle>> results = client.session->ResolveMany(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok()) << results[0].status();
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[2].ok());
}

TEST(ResolveManyTest, AgentModeIsUnimplementedPerEntry) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAgent);
  std::vector<HnsSession::ResolveRequest> requests(2);
  for (HnsSession::ResolveRequest& request : requests) {
    request.name = SunName();
    request.query_class = kQueryClassHrpcBinding;
  }
  for (const Result<NsmHandle>& result : client.session->ResolveMany(requests)) {
    EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
  }
}

// The arrangements are behaviourally interchangeable even when caches are in
// arbitrary states — a different ordering from the integration test's
// cold-state sweep.
TEST(SessionTest, ArrangementsAgreeWithWarmAndColdCachesMixed) {
  Testbed bed;
  WireValue args = RecordBuilder().Str("service", kDesiredService).Build();
  Result<WireValue> reference(InternalError("unset"));
  for (Arrangement a : {Arrangement::kAllRemote, Arrangement::kAgent,
                        Arrangement::kRemoteNsms, Arrangement::kRemoteHns,
                        Arrangement::kAllLinked}) {
    SCOPED_TRACE(ArrangementName(a));
    ClientSetup client = bed.MakeClient(a);
    // Deliberately no flush: some caches are warm from earlier arrangements.
    Result<WireValue> result = client.session->Query(SunName(), kQueryClassHrpcBinding, args);
    ASSERT_TRUE(result.ok()) << result.status();
    if (!reference.ok()) {
      reference = result;
    } else {
      EXPECT_EQ(*result, *reference);
    }
  }
}

}  // namespace
}  // namespace hcs
