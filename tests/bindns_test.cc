// Unit tests for src/bindns: records, zones, master files, server (query /
// dynamic update / zone transfer / forwarding), resolver caching.

#include <gtest/gtest.h>

#include "src/bindns/master_file.h"
#include "src/bindns/resolver.h"
#include "src/bindns/server.h"
#include "src/bindns/zone.h"
#include "src/common/rand.h"
#include "src/rpc/ports.h"

namespace hcs {
namespace {

// --- ResourceRecord -----------------------------------------------------------

TEST(ResourceRecordTest, FactoriesAndAccessors) {
  ResourceRecord a = ResourceRecord::MakeA("fiji.cs.washington.edu", 0x80950104, 600);
  EXPECT_EQ(a.AddressRdata().value(), 0x80950104u);
  EXPECT_EQ(a.ttl_seconds, 600u);
  EXPECT_EQ(a.TextRdata().status().code(), StatusCode::kProtocolError);

  ResourceRecord txt = ResourceRecord::MakeTxt("x", "hello");
  EXPECT_EQ(txt.TextRdata().value(), "hello");
  EXPECT_EQ(txt.AddressRdata().status().code(), StatusCode::kProtocolError);
}

TEST(ResourceRecordTest, WireRoundTrip) {
  ResourceRecord rr = ResourceRecord::MakeCname("www.cs.washington.edu",
                                                "fiji.cs.washington.edu", 1200);
  XdrEncoder enc;
  rr.EncodeTo(&enc);
  XdrDecoder dec(enc.bytes());
  Result<ResourceRecord> decoded = ResourceRecord::DecodeFrom(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rr);
}

TEST(ResourceRecordTest, OversizedRdataRejectedOnDecode) {
  ResourceRecord rr;
  rr.name = "big";
  rr.rdata = Bytes(300, 1);
  XdrEncoder enc;
  rr.EncodeTo(&enc);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(ResourceRecord::DecodeFrom(&dec).status().code(), StatusCode::kProtocolError);
}

// --- Unspecified-type chunking ---------------------------------------------------

TEST(UnspecChunkingTest, SmallValueIsOneRecord) {
  WireValue v = RecordBuilder().Str("ns", "UW-BIND").Build();
  std::vector<ResourceRecord> records = UnspecRecordsFromValue("ctx.bind.hns", v);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(ValueFromUnspecRecords(records).value(), v);
}

TEST(UnspecChunkingTest, LargeValueChunksAndReassembles) {
  WireValue v = WireValue::OfBlob(Bytes(1000, 0x5a));
  std::vector<ResourceRecord> records = UnspecRecordsFromValue("big.hns", v);
  EXPECT_GT(records.size(), 3u);
  for (const ResourceRecord& rr : records) {
    EXPECT_LE(rr.rdata.size(), kMaxRdataBytes);
  }
  // Order independence: shuffle before reassembly.
  std::swap(records.front(), records.back());
  EXPECT_EQ(ValueFromUnspecRecords(records).value(), v);
}

TEST(UnspecChunkingTest, MissingChunkIsProtocolError) {
  WireValue v = WireValue::OfBlob(Bytes(1000, 0x5a));
  std::vector<ResourceRecord> records = UnspecRecordsFromValue("big.hns", v);
  records.erase(records.begin() + 1);
  EXPECT_EQ(ValueFromUnspecRecords(records).status().code(), StatusCode::kProtocolError);
}

class UnspecChunkingSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(UnspecChunkingSizeTest, RoundTripsAtEverySize) {
  Rng rng(GetParam());
  Bytes blob(GetParam(), 0);
  for (uint8_t& b : blob) {
    b = static_cast<uint8_t>(rng.Next());
  }
  WireValue v = WireValue::OfBlob(std::move(blob));
  EXPECT_EQ(ValueFromUnspecRecords(UnspecRecordsFromValue("n.hns", v)).value(), v);
}

INSTANTIATE_TEST_SUITE_P(Sizes, UnspecChunkingSizeTest,
                         ::testing::Values(0, 1, 250, 253, 254, 255, 508, 509, 2048));

// --- Zone ----------------------------------------------------------------------

TEST(ZoneTest, ContainsIsSuffixBased) {
  Zone zone("cs.washington.edu");
  EXPECT_TRUE(zone.Contains("fiji.cs.washington.edu"));
  EXPECT_TRUE(zone.Contains("CS.WASHINGTON.EDU"));
  EXPECT_FALSE(zone.Contains("ee.washington.edu"));
  EXPECT_FALSE(zone.Contains("evilcs.washington.edu"));
}

TEST(ZoneTest, AddRejectsOutOfZoneAndOversized) {
  Zone zone("cs.washington.edu");
  EXPECT_EQ(zone.Add(ResourceRecord::MakeA("fiji.ee.washington.edu", 1)).code(),
            StatusCode::kInvalidArgument);
  ResourceRecord big = ResourceRecord::MakeTxt("x.cs.washington.edu", std::string(300, 'a'));
  EXPECT_EQ(zone.Add(big).code(), StatusCode::kInvalidArgument);
}

TEST(ZoneTest, MultipleRecordsPerNameAndType) {
  Zone zone("cs.washington.edu");
  ASSERT_TRUE(zone.Add(ResourceRecord::MakeA("gw.cs.washington.edu", 1)).ok());
  ASSERT_TRUE(zone.Add(ResourceRecord::MakeA("gw.cs.washington.edu", 2)).ok());
  Result<std::vector<ResourceRecord>> records = zone.Lookup("gw.cs.washington.edu", RrType::kA);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u) << "gateways keep one record per address";
}

TEST(ZoneTest, LookupDistinguishesNxdomainFromNoData) {
  Zone zone("cs.washington.edu");
  ASSERT_TRUE(zone.Add(ResourceRecord::MakeTxt("a.cs.washington.edu", "t")).ok());
  // Name absent entirely: NOT_FOUND.
  EXPECT_EQ(zone.Lookup("b.cs.washington.edu", RrType::kA).status().code(),
            StatusCode::kNotFound);
  // Name present, type absent: empty answer, not an error.
  Result<std::vector<ResourceRecord>> r = zone.Lookup("a.cs.washington.edu", RrType::kA);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(ZoneTest, CnameIsChasedOneLevel) {
  Zone zone("cs.washington.edu");
  ASSERT_TRUE(zone.Add(ResourceRecord::MakeA("fiji.cs.washington.edu", 7)).ok());
  ASSERT_TRUE(
      zone.Add(ResourceRecord::MakeCname("www.cs.washington.edu", "fiji.cs.washington.edu"))
          .ok());
  Result<std::vector<ResourceRecord>> r = zone.Lookup("www.cs.washington.edu", RrType::kA);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ(r->front().type, RrType::kCname);
  EXPECT_EQ(r->back().AddressRdata().value(), 7u);
}

TEST(ZoneTest, AnyReturnsEverythingUnderTheName) {
  Zone zone("cs.washington.edu");
  ASSERT_TRUE(zone.Add(ResourceRecord::MakeA("x.cs.washington.edu", 1)).ok());
  ASSERT_TRUE(zone.Add(ResourceRecord::MakeTxt("x.cs.washington.edu", "note")).ok());
  Result<std::vector<ResourceRecord>> r = zone.Lookup("x.cs.washington.edu", RrType::kAny);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(ZoneTest, RemoveByTypeAndWholeName) {
  Zone zone("z");
  ASSERT_TRUE(zone.Add(ResourceRecord::MakeA("a.z", 1)).ok());
  ASSERT_TRUE(zone.Add(ResourceRecord::MakeTxt("a.z", "t")).ok());
  EXPECT_EQ(zone.Remove("a.z", RrType::kA), 1u);
  EXPECT_EQ(zone.size(), 1u);
  EXPECT_EQ(zone.Remove("a.z", std::nullopt), 1u);
  EXPECT_EQ(zone.size(), 0u);
  EXPECT_EQ(zone.Remove("a.z", std::nullopt), 0u);
}

TEST(ZoneTest, SerialBumpsOnChange) {
  Zone zone("z");
  uint32_t s0 = zone.serial();
  ASSERT_TRUE(zone.Add(ResourceRecord::MakeA("a.z", 1)).ok());
  EXPECT_GT(zone.serial(), s0);
  uint32_t s1 = zone.serial();
  zone.Remove("a.z", std::nullopt);
  EXPECT_GT(zone.serial(), s1);
}

// --- Master files ------------------------------------------------------------------

TEST(MasterFileTest, ParsesTheSupportedDialect) {
  const char* text = R"(
; the department zone
$ORIGIN cs.washington.edu
$TTL 1800
fiji    3600  A      128.95.1.4
tahiti        A      128.95.1.5
www           CNAME  fiji.cs.washington.edu.
fiji          TXT    "4.3BSD name server"
@             MX     "10 june.cs.washington.edu"
)";
  Result<std::vector<ResourceRecord>> records = ParseMasterFile(text);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 5u);
  EXPECT_EQ((*records)[0].name, "fiji.cs.washington.edu");
  EXPECT_EQ((*records)[0].ttl_seconds, 3600u);
  EXPECT_EQ((*records)[0].AddressRdata().value(), ParseAddress("128.95.1.4").value());
  EXPECT_EQ((*records)[1].ttl_seconds, 1800u);  // $TTL default
  EXPECT_EQ((*records)[2].type, RrType::kCname);
  EXPECT_EQ((*records)[2].TextRdata().value(), "fiji.cs.washington.edu");
  EXPECT_EQ((*records)[4].name, "cs.washington.edu");  // @ is the origin
}

TEST(MasterFileTest, ReportsErrorsWithLineNumbers) {
  Result<std::vector<ResourceRecord>> bad_type = ParseMasterFile("x A2Z 128.0.0.1\n");
  EXPECT_FALSE(bad_type.ok());
  Result<std::vector<ResourceRecord>> bad_addr =
      ParseMasterFile("$ORIGIN z\nx A 999.0.0.1\n");
  EXPECT_FALSE(bad_addr.ok());
  EXPECT_NE(bad_addr.status().message().find("999"), std::string::npos);
  Result<std::vector<ResourceRecord>> unterminated = ParseMasterFile("x TXT \"oops\n");
  EXPECT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("line 1"), std::string::npos);
}

// Regression: 20-digit "integers" in $TTL or the per-record TTL slot used to
// flow into std::stoul and throw std::out_of_range — a crash on a hostile
// zone file. Both must now be clean parse errors.
TEST(MasterFileTest, OverflowingTtlIsAnErrorNotAThrow) {
  Result<std::vector<ResourceRecord>> bad_default =
      ParseMasterFile("$TTL 99999999999999999999\n");
  EXPECT_EQ(bad_default.status().code(), StatusCode::kInvalidArgument);
  // A huge per-record TTL no longer parses as a TTL; it is rejected as an
  // unknown record type instead of throwing.
  Result<std::vector<ResourceRecord>> bad_record =
      ParseMasterFile("$ORIGIN z\nx 99999999999999999999 A 128.0.0.1\n");
  EXPECT_FALSE(bad_record.ok());
}

TEST(MasterFileTest, AddressFormatting) {
  EXPECT_EQ(FormatAddress(0x80950104), "128.149.1.4");
  EXPECT_EQ(ParseAddress("128.149.1.4").value(), 0x80950104u);
  EXPECT_FALSE(ParseAddress("1.2.3").ok());
  EXPECT_FALSE(ParseAddress("a.b.c.d").ok());
  EXPECT_FALSE(ParseAddress("256.0.0.1").ok());
}

TEST(MasterFileTest, FormatParsesBack) {
  std::vector<ResourceRecord> records = {
      ResourceRecord::MakeA("fiji.cs.washington.edu", 0x80950104, 600),
      ResourceRecord::MakeCname("www.cs.washington.edu", "fiji.cs.washington.edu", 600),
      ResourceRecord::MakeTxt("fiji.cs.washington.edu", "note", 600),
  };
  Result<std::vector<ResourceRecord>> reparsed = ParseMasterFile(FormatMasterFile(records));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, records);
}

TEST(MasterFileTest, LoadsIntoZoneAndRejectsOutOfZone) {
  Zone zone("cs.washington.edu");
  ASSERT_TRUE(LoadZoneFromMasterFile(&zone,
                                     "$ORIGIN cs.washington.edu\nfiji A 128.95.1.4\n")
                  .ok());
  EXPECT_EQ(zone.size(), 1u);
  EXPECT_FALSE(
      LoadZoneFromMasterFile(&zone, "$ORIGIN ee.washington.edu\nx A 1.2.3.4\n").ok());
}

// --- Server + resolver over the simulated network -----------------------------------

class BindServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(world_.network().AddHost("client", MachineType::kMicroVax, OsType::kUnix).ok());
    ASSERT_TRUE(world_.network().AddHost("ns1", MachineType::kMicroVax, OsType::kUnix).ok());
    ASSERT_TRUE(world_.network().AddHost("ns2", MachineType::kMicroVax, OsType::kUnix).ok());

    BindServerOptions primary_options;
    primary_options.allow_dynamic_update = true;
    primary_options.allow_unspecified_type = true;
    primary_ = BindServer::InstallOn(&world_, "ns1", primary_options).value();
    Zone* zone = primary_->AddZone("cs.washington.edu").value();
    ASSERT_TRUE(zone->Add(ResourceRecord::MakeA("fiji.cs.washington.edu", 0x11, 60)).ok());

    transport_ = std::make_unique<SimNetTransport>(&world_);
    client_ = std::make_unique<RpcClient>(&world_, "client", transport_.get());
  }

  BindResolver MakeResolver(const std::string& server, bool cache = true) {
    BindResolverOptions options;
    options.server_host = server;
    options.enable_cache = cache;
    return BindResolver(client_.get(), options);
  }

  World world_;
  BindServer* primary_ = nullptr;
  std::unique_ptr<SimNetTransport> transport_;
  std::unique_ptr<RpcClient> client_;
};

TEST_F(BindServerTest, QueryOverRpc) {
  BindResolver resolver = MakeResolver("ns1");
  EXPECT_EQ(resolver.LookupAddress("fiji.cs.washington.edu").value(), 0x11u);
  EXPECT_EQ(resolver.LookupAddress("nosuch.cs.washington.edu").status().code(),
            StatusCode::kNotFound);
}

TEST_F(BindServerTest, ResolverCachesUntilTtlExpiry) {
  BindResolver resolver = MakeResolver("ns1");
  ASSERT_TRUE(resolver.LookupAddress("fiji.cs.washington.edu").ok());
  uint64_t misses = resolver.stats().cache_misses;

  ASSERT_TRUE(resolver.LookupAddress("fiji.cs.washington.edu").ok());
  EXPECT_EQ(resolver.stats().cache_misses, misses);
  EXPECT_EQ(resolver.stats().cache_hits, 1u);

  // The record's TTL is 60 s; advance past it.
  world_.clock().AdvanceMs(61.0 * 1000.0);
  ASSERT_TRUE(resolver.LookupAddress("fiji.cs.washington.edu").ok());
  EXPECT_EQ(resolver.stats().cache_misses, misses + 1);
}

TEST_F(BindServerTest, DynamicUpdateGatedByOptions) {
  // ns2: stock server, no updates.
  BindServer* stock = BindServer::InstallOn(&world_, "ns2", BindServerOptions{}).value();
  (void)stock->AddZone("ee.washington.edu").value();  // hcs:ignore-status(install helper; value() aborts on failure, handle unused)
  BindResolver to_stock = MakeResolver("ns2");
  EXPECT_EQ(to_stock
                .Update(UpdateOp::kAdd, ResourceRecord::MakeA("x.ee.washington.edu", 1))
                .code(),
            StatusCode::kPermissionDenied);

  // The modified server accepts them and they are immediately visible.
  BindResolver to_primary = MakeResolver("ns1", /*cache=*/false);
  ASSERT_TRUE(to_primary
                  .Update(UpdateOp::kAdd, ResourceRecord::MakeA("new.cs.washington.edu", 0x22))
                  .ok());
  EXPECT_EQ(to_primary.LookupAddress("new.cs.washington.edu").value(), 0x22u);

  // Delete.
  ResourceRecord del;
  del.name = "new.cs.washington.edu";
  del.type = RrType::kA;
  ASSERT_TRUE(to_primary.Update(UpdateOp::kDelete, del).ok());
  EXPECT_FALSE(to_primary.LookupAddress("new.cs.washington.edu").ok());
}

TEST_F(BindServerTest, UnspecifiedTypeGatedByOptions) {
  BindServer* stock = BindServer::InstallOn(&world_, "ns2", BindServerOptions{}).value();
  (void)stock->AddZone("z").value();  // hcs:ignore-status(install helper; value() aborts on failure, handle unused)
  BindResolver to_stock = MakeResolver("ns2");
  ResourceRecord unspec;
  unspec.name = "meta.z";
  unspec.type = RrType::kUnspec;
  unspec.rdata = Bytes{0, 0, 1};
  EXPECT_EQ(to_stock.Update(UpdateOp::kAdd, unspec).code(), StatusCode::kPermissionDenied);
}

TEST_F(BindServerTest, ZoneTransferReturnsWholeZone) {
  Zone* zone = primary_->FindZone("cs.washington.edu");
  ASSERT_TRUE(zone->Add(ResourceRecord::MakeTxt("fiji.cs.washington.edu", "note")).ok());
  BindResolver resolver = MakeResolver("ns1");
  Result<BindAxfrResponse> axfr = resolver.ZoneTransfer("cs.washington.edu");
  ASSERT_TRUE(axfr.ok()) << axfr.status();
  EXPECT_EQ(axfr->records.size(), zone->size());
  EXPECT_EQ(axfr->serial, zone->serial());
  EXPECT_FALSE(resolver.ZoneTransfer("nozone").ok());
}

TEST_F(BindServerTest, ForwarderCachesAndInvalidates) {
  BindServerOptions secondary_options;
  secondary_options.forwarder_host = "ns1";
  BindServer* secondary = BindServer::InstallOn(&world_, "ns2", secondary_options).value();
  primary_->AddNotifyTarget("ns2");

  BindResolver via_secondary = MakeResolver("ns2", /*cache=*/false);
  EXPECT_EQ(via_secondary.LookupAddress("fiji.cs.washington.edu").value(), 0x11u);
  EXPECT_EQ(secondary->forward_cache_misses(), 1u);
  EXPECT_EQ(via_secondary.LookupAddress("fiji.cs.washington.edu").value(), 0x11u);
  EXPECT_EQ(secondary->forward_cache_hits(), 1u);

  // A dynamic update at the primary invalidates the secondary's cache entry.
  BindResolver to_primary = MakeResolver("ns1", /*cache=*/false);
  ResourceRecord del;
  del.name = "fiji.cs.washington.edu";
  del.type = RrType::kA;
  ASSERT_TRUE(to_primary.Update(UpdateOp::kDelete, del).ok());
  ASSERT_TRUE(
      to_primary.Update(UpdateOp::kAdd, ResourceRecord::MakeA("fiji.cs.washington.edu", 0x33))
          .ok());
  EXPECT_EQ(via_secondary.LookupAddress("fiji.cs.washington.edu").value(), 0x33u);
}

TEST_F(BindServerTest, SecondaryZoneRefreshesOnSerialChange) {
  BindServer* secondary = BindServer::InstallOn(&world_, "ns2", BindServerOptions{}).value();
  ASSERT_TRUE(secondary->AddSecondaryZone("cs.washington.edu", "ns1").ok());

  // Initial transfer.
  EXPECT_EQ(secondary->RefreshSecondaryZones().value(), 1u);
  BindResolver via_secondary = MakeResolver("ns2", /*cache=*/false);
  EXPECT_EQ(via_secondary.LookupAddress("fiji.cs.washington.edu").value(), 0x11u);

  // No change: refresh is a no-op (serial check only).
  EXPECT_EQ(secondary->RefreshSecondaryZones().value(), 0u);

  // Primary changes; the secondary is stale until the next refresh.
  Zone* primary_zone = primary_->FindZone("cs.washington.edu");
  ASSERT_TRUE(primary_zone->Add(ResourceRecord::MakeA("newhost.cs.washington.edu", 0x44))
                  .ok());
  EXPECT_FALSE(via_secondary.LookupAddress("newhost.cs.washington.edu").ok());
  EXPECT_EQ(secondary->RefreshSecondaryZones().value(), 1u);
  EXPECT_EQ(via_secondary.LookupAddress("newhost.cs.washington.edu").value(), 0x44u);
}

TEST_F(BindServerTest, PeriodicRefreshRunsOnTheEventQueue) {
  BindServer* secondary = BindServer::InstallOn(&world_, "ns2", BindServerOptions{}).value();
  ASSERT_TRUE(secondary->AddSecondaryZone("cs.washington.edu", "ns1").ok());
  secondary->SchedulePeriodicRefresh(600.0);  // every 10 simulated minutes

  Zone* primary_zone = primary_->FindZone("cs.washington.edu");
  ASSERT_TRUE(primary_zone->Add(ResourceRecord::MakeA("tick.cs.washington.edu", 0x55)).ok());

  // Run 11 simulated minutes of timer events.
  world_.events().RunUntil(world_.clock().Now() + MsToSim(11.0 * 60.0 * 1000.0));
  BindResolver via_secondary = MakeResolver("ns2", /*cache=*/false);
  EXPECT_EQ(via_secondary.LookupAddress("tick.cs.washington.edu").value(), 0x55u);
  EXPECT_GT(world_.events().pending(), 0u) << "the refresh timer re-arms itself";
}

TEST_F(BindServerTest, SecondaryRefreshSurvivesPrimaryOutage) {
  BindServer* secondary = BindServer::InstallOn(&world_, "ns2", BindServerOptions{}).value();
  ASSERT_TRUE(secondary->AddSecondaryZone("cs.washington.edu", "ns1").ok());
  ASSERT_TRUE(secondary->RefreshSecondaryZones().ok());

  world_.UnregisterService("ns1", kBindPort);
  EXPECT_FALSE(secondary->RefreshSecondaryZones().ok());
  // The stale replica still answers (availability through replication).
  BindResolver via_secondary = MakeResolver("ns2", /*cache=*/false);
  EXPECT_EQ(via_secondary.LookupAddress("fiji.cs.washington.edu").value(), 0x11u);
}

TEST_F(BindServerTest, IterativeQueryDoesNotForward) {
  BindServerOptions secondary_options;
  secondary_options.forwarder_host = "ns1";
  (void)BindServer::InstallOn(&world_, "ns2", secondary_options).value();  // hcs:ignore-status(install helper; value() aborts on failure, handle unused)

  BindQueryRequest request;
  request.name = "fiji.cs.washington.edu";
  request.type = RrType::kA;
  request.recursion_desired = false;

  HrpcBinding b;
  b.host = "ns2";
  b.port = kBindPort;
  b.program = kBindProgram;
  b.control = ControlKind::kRaw;
  Result<Bytes> reply = client_->Call(b, kBindProcQuery, request.Encode());
  ASSERT_TRUE(reply.ok());
  BindQueryResponse response = BindQueryResponse::Decode(*reply).value();
  EXPECT_EQ(response.rcode, Rcode::kServFail);
}

}  // namespace
}  // namespace hcs
