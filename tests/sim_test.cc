// Unit tests for src/sim: virtual clock, event queue, network, world.

#include <gtest/gtest.h>

#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/network.h"
#include "src/sim/world.h"

namespace hcs {
namespace {

// --- VirtualClock ---------------------------------------------------------

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0);
  clock.AdvanceMs(1.5);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 1.5);
  clock.Advance(MsToSim(0.5));
  EXPECT_DOUBLE_EQ(clock.NowMs(), 2.0);
  clock.Reset();
  EXPECT_EQ(clock.Now(), 0);
}

TEST(TimeTest, MsConversionRoundTrips) {
  EXPECT_EQ(MsToSim(1.0), 1000);
  EXPECT_DOUBLE_EQ(SimToMs(MsToSim(123.456)), 123.456);
}

// --- EventQueue -------------------------------------------------------------

TEST(EventQueueTest, RunsInTimestampOrder) {
  VirtualClock clock;
  EventQueue queue(&clock);
  std::vector<int> order;
  queue.ScheduleAt(MsToSim(30), [&] { order.push_back(3); });
  queue.ScheduleAt(MsToSim(10), [&] { order.push_back(1); });
  queue.ScheduleAt(MsToSim(20), [&] { order.push_back(2); });
  EXPECT_EQ(queue.RunUntilIdle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(clock.NowMs(), 30.0);
}

TEST(EventQueueTest, SameTimeEventsRunFifo) {
  VirtualClock clock;
  EventQueue queue(&clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.ScheduleAt(MsToSim(10), [&order, i] { order.push_back(i); });
  }
  queue.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  VirtualClock clock;
  EventQueue queue(&clock);
  int fired = 0;
  uint64_t id = queue.ScheduleAt(MsToSim(5), [&] { ++fired; });
  queue.ScheduleAt(MsToSim(6), [&] { ++fired; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));  // already cancelled
  EXPECT_FALSE(queue.Cancel(9999));
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  VirtualClock clock;
  EventQueue queue(&clock);
  int fired = 0;
  queue.ScheduleAt(MsToSim(10), [&] { ++fired; });
  queue.ScheduleAt(MsToSim(50), [&] { ++fired; });
  EXPECT_EQ(queue.RunUntil(MsToSim(20)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 20.0);
  EXPECT_EQ(queue.pending(), 1u);
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, PastEventsRunAtCurrentTime) {
  VirtualClock clock;
  EventQueue queue(&clock);
  clock.AdvanceMs(100);
  SimTime fired_at = -1;
  queue.ScheduleAt(MsToSim(10), [&] { fired_at = clock.Now(); });
  queue.RunUntilIdle();
  EXPECT_EQ(fired_at, MsToSim(100));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  VirtualClock clock;
  EventQueue queue(&clock);
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 4) {
      // hcs:on-loop(sim EventQueue::ScheduleAfter, not the reactor's loop-only timer API)
      queue.ScheduleAfter(MsToSim(10), chain);
    }
  };
  // hcs:on-loop(sim EventQueue::ScheduleAfter, not the reactor's loop-only timer API)
  queue.ScheduleAfter(MsToSim(10), chain);
  queue.RunUntilIdle();
  EXPECT_EQ(depth, 4);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 40.0);
}

// --- Network -----------------------------------------------------------------

TEST(NetworkTest, AddAndLookupHost) {
  Network net;
  Result<uint32_t> addr = net.AddHost("fiji.cs.washington.edu", MachineType::kSun,
                                      OsType::kUnix);
  ASSERT_TRUE(addr.ok());
  EXPECT_NE(*addr, 0u);
  Result<HostInfo> info = net.GetHost("FIJI.cs.Washington.EDU");  // case-insensitive
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->machine, MachineType::kSun);
  EXPECT_EQ(info->address, *addr);
}

TEST(NetworkTest, RejectsDuplicatesAndEmpty) {
  Network net;
  ASSERT_TRUE(net.AddHost("a", MachineType::kMicroVax, OsType::kUnix).ok());
  EXPECT_EQ(net.AddHost("A", MachineType::kMicroVax, OsType::kUnix).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(net.AddHost("", MachineType::kMicroVax, OsType::kUnix).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetworkTest, UniqueAddresses) {
  Network net;
  uint32_t a = net.AddHost("a", MachineType::kMicroVax, OsType::kUnix).value();
  uint32_t b = net.AddHost("b", MachineType::kMicroVax, OsType::kUnix).value();
  EXPECT_NE(a, b);
}

TEST(NetworkTest, ExtraDelayIsSymmetric) {
  Network net;
  net.SetExtraDelayMs("a", "b", 12.0);
  EXPECT_DOUBLE_EQ(net.ExtraDelayMs("a", "b"), 12.0);
  EXPECT_DOUBLE_EQ(net.ExtraDelayMs("B", "A"), 12.0);
  EXPECT_DOUBLE_EQ(net.ExtraDelayMs("a", "c"), 0.0);
}

// --- World ----------------------------------------------------------------------

class EchoService : public SimService {
 public:
  explicit EchoService(World* world, double cpu_ms) : world_(world), cpu_ms_(cpu_ms) {}
  Result<Bytes> HandleMessage(const Bytes& request) override {
    world_->ChargeMs(cpu_ms_);
    return request;
  }

 private:
  World* world_;
  double cpu_ms_;
};

class WorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(world_.network().AddHost("a", MachineType::kMicroVax, OsType::kUnix).ok());
    ASSERT_TRUE(world_.network().AddHost("b", MachineType::kMicroVax, OsType::kUnix).ok());
  }
  World world_;
};

TEST_F(WorldTest, RoundTripDispatchesAndCharges) {
  EchoService echo(&world_, 5.0);
  ASSERT_TRUE(world_.RegisterService("b", 99, &echo).ok());

  Bytes request{1, 2, 3};
  Result<Bytes> reply = world_.RoundTrip("a", "b", 99, request);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, request);
  // cross-host rtt + 5ms server cpu
  double expected = world_.costs().NetRttMs(false, 3, 3) + 5.0;
  EXPECT_NEAR(world_.clock().NowMs(), expected, 1e-3);  // µs clock quantization
  EXPECT_EQ(world_.stats().total_messages, 1u);
  EXPECT_EQ(world_.stats().messages_per_endpoint["b:99"], 1u);
}

TEST_F(WorldTest, SameHostIsCheaper) {
  EchoService echo(&world_, 0.0);
  ASSERT_TRUE(world_.RegisterService("b", 99, &echo).ok());
  double t0 = world_.clock().NowMs();
  (void)world_.RoundTrip("b", "b", 99, Bytes{});  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double same = world_.clock().NowMs() - t0;
  t0 = world_.clock().NowMs();
  (void)world_.RoundTrip("a", "b", 99, Bytes{});  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double cross = world_.clock().NowMs() - t0;
  EXPECT_LT(same, cross);
}

TEST_F(WorldTest, LargerPayloadsCostMore) {
  EchoService echo(&world_, 0.0);
  ASSERT_TRUE(world_.RegisterService("b", 99, &echo).ok());
  double t0 = world_.clock().NowMs();
  (void)world_.RoundTrip("a", "b", 99, Bytes(16, 0));  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double small = world_.clock().NowMs() - t0;
  t0 = world_.clock().NowMs();
  (void)world_.RoundTrip("a", "b", 99, Bytes(8192, 0));  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double large = world_.clock().NowMs() - t0;
  EXPECT_GT(large, small);
}

TEST_F(WorldTest, ErrorsForMissingEndpoints) {
  EXPECT_EQ(world_.RoundTrip("a", "b", 99, Bytes{}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(world_.RoundTrip("a", "nohost", 99, Bytes{}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(world_.RoundTrip("nohost", "b", 99, Bytes{}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(WorldTest, DuplicateRegistrationRejectedAndUnregisterWorks) {
  EchoService echo(&world_, 0.0);
  ASSERT_TRUE(world_.RegisterService("b", 99, &echo).ok());
  EXPECT_EQ(world_.RegisterService("b", 99, &echo).code(), StatusCode::kAlreadyExists);
  world_.UnregisterService("b", 99);
  EXPECT_FALSE(world_.HasService("b", 99));
  EXPECT_EQ(world_.RoundTrip("a", "b", 99, Bytes{}).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(WorldTest, ExtraDelayApplied) {
  EchoService echo(&world_, 0.0);
  ASSERT_TRUE(world_.RegisterService("b", 99, &echo).ok());
  double t0 = world_.clock().NowMs();
  (void)world_.RoundTrip("a", "b", 99, Bytes{});  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double base = world_.clock().NowMs() - t0;

  world_.network().SetExtraDelayMs("a", "b", 40.0);
  t0 = world_.clock().NowMs();
  (void)world_.RoundTrip("a", "b", 99, Bytes{});  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  EXPECT_NEAR(world_.clock().NowMs() - t0, base + 40.0, 1e-3);
}

}  // namespace
}  // namespace hcs
