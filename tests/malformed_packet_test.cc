// Malformed packets against live servers on real sockets. The decode sweep
// (decode_sweep_test.cc) proves each decoder is total in isolation; these
// tests prove the property end to end: a BIND, Clearinghouse, portmapper, or
// HNS server fed truncated and garbage frames over 127.0.0.1 must answer
// with a protocol-level error reply or drop the frame cleanly — never crash,
// desynchronize, or wedge the serving thread/reactor. Liveness is asserted
// after every storm by a well-formed call on the same endpoint.
//
// UDP endpoints run under both serving modes (thread-per-endpoint and the
// shared epoll reactor); stream endpoints always run on the reactor.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/bindns/protocol.h"
#include "src/bindns/server.h"
#include "src/ch/server.h"
#include "src/hns/hns.h"
#include "src/hns/servers.h"
#include "src/hns/wire_protocol.h"
#include "src/rpc/control.h"
#include "src/rpc/portmapper.h"
#include "src/rpc/ports.h"
#include "src/rpc/server.h"
#include "src/rpc/stream_transport.h"
#include "src/rpc/udp_transport.h"
#include "src/sim/world.h"

namespace hcs {
namespace {

// One live server endpoint under attack.
struct Target {
  std::string label;
  RpcServer* rpc = nullptr;
  uint32_t program = 0;
  uint32_t procedure = 0;
};

Bytes PatternBytes(size_t n) {
  Bytes out(n, 0);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  return out;
}

// A structurally valid call whose args are empty: it reaches the handler,
// which fails to decode the args and answers with an in-protocol error.
Bytes ValidCall(const Target& target) {
  RpcCall call;
  call.xid = 7;
  call.program = target.program;
  call.version = 2;
  call.procedure = target.procedure;
  return GetControlProtocol(target.rpc->control_kind()).EncodeCall(call);
}

std::vector<Bytes> AttackFrames(const Target& target) {
  Bytes valid = ValidCall(target);
  std::vector<Bytes> frames;
  frames.push_back(Bytes{});
  frames.push_back(Bytes{0xde, 0xad, 0xbe, 0xef});
  frames.push_back(PatternBytes(64));
  frames.push_back(Bytes(valid.begin(), valid.begin() + static_cast<long>(valid.size() / 3)));
  frames.push_back(Bytes(valid.begin(), valid.begin() + static_cast<long>(2 * valid.size() / 3)));
  for (size_t offset : {size_t{0}, valid.size() / 2, valid.size() - 1}) {
    Bytes corrupted = valid;
    corrupted[offset] = static_cast<uint8_t>(corrupted[offset] ^ 0xff);
    frames.push_back(corrupted);
  }
  return frames;
}

// Builds one world with all four server flavors and serves each over the
// given host. Returns the (target, port) list.
class MalformedPacketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(world_.network().AddHost("ns", MachineType::kMicroVax, OsType::kUnix).ok());
    ASSERT_TRUE(world_.network().AddHost("ch", MachineType::kXeroxD, OsType::kXde).ok());
    ASSERT_TRUE(world_.network().AddHost("hub", MachineType::kMicroVax, OsType::kUnix).ok());

    BindServer* bind = BindServer::InstallOn(&world_, "ns", BindServerOptions{}).value();
    targets_.push_back({"bind", bind->rpc(), kBindProgram, kBindProcQuery});

    ChServerOptions ch_options;
    ch_options.require_authentication = false;
    ChServer* ch = ChServer::InstallOn(&world_, "ch", ch_options).value();
    targets_.push_back({"clearinghouse", ch->rpc(), kClearinghouseProgram,
                        kChProcRetrieveItem});

    PortMapper* pmap = PortMapper::InstallOn(&world_, "hub").value();
    targets_.push_back({"portmapper", pmap->server(), kPortmapperProgram,
                        kPmapProcGetPort});

    HnsOptions hns_options;
    hns_options.meta_server_host = "ns";
    HnsServer* hns = HnsServer::InstallOn(&world_, "hub", hns_options).value();
    targets_.push_back({"hns", hns->rpc(), kHnsProgram, kHnsProcFindNsm});
  }

  World world_;
  std::vector<Target> targets_;
};

class MalformedPacketUdpTest : public MalformedPacketTest,
                               public ::testing::WithParamInterface<ServeMode> {};

TEST_P(MalformedPacketUdpTest, UdpServersSurviveGarbageAndStayLive) {
  UdpServerHost host(GetParam());
  UdpTransport transport;

  for (Target& target : targets_) {
    SCOPED_TRACE(target.label);
    Result<uint16_t> port = host.Serve(target.rpc, 0);
    ASSERT_TRUE(port.ok()) << port.status();
    const ControlProtocol& control = GetControlProtocol(target.rpc->control_kind());

    for (const Bytes& frame : AttackFrames(target)) {
      SCOPED_TRACE("frame size " + std::to_string(frame.size()));
      // Short budget: the common outcome for garbage is a silent drop, and
      // each drop costs the client its full wait.
      Result<Bytes> reply =
          transport.RoundTripWithBudget("client", "localhost", *port, frame,
                                        /*budget_ms=*/150);
      if (reply.ok()) {
        // Whatever came back must be a well-formed reply (an in-protocol
        // error is the expected answer to structurally valid junk).
        EXPECT_TRUE(control.DecodeReply(*reply).ok())
            << target.label << " answered garbage with garbage";
      } else {
        // Clean drop: silence, not a crashed endpoint (liveness below).
        EXPECT_TRUE(reply.status().code() == StatusCode::kTimeout ||
                    reply.status().code() == StatusCode::kUnavailable)
            << reply.status().ToString();
      }
    }

    // The storm must leave the endpoint serving: a well-formed call gets a
    // well-formed reply (app-level error is fine — the args were empty).
    Result<Bytes> reply =
        transport.RoundTrip("client", "localhost", *port, ValidCall(target));
    ASSERT_TRUE(reply.ok())
        << target.label << " wedged after garbage: " << reply.status();
    EXPECT_TRUE(control.DecodeReply(*reply).ok());
  }
  host.StopAll();
}

INSTANTIATE_TEST_SUITE_P(ServeModes, MalformedPacketUdpTest,
                         ::testing::Values(ServeMode::kThreadPerEndpoint,
                                           ServeMode::kReactor),
                         [](const ::testing::TestParamInfo<ServeMode>& mode) {
                           return mode.param == ServeMode::kReactor
                                      ? "Reactor"
                                      : "ThreadPerEndpoint";
                         });

// Sends raw bytes to a TCP port and closes without reading; used to poison
// stream connections mid-frame.
void BlindTcpSend(uint16_t port, const Bytes& data) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  if (!data.empty()) {
    (void)send(fd, data.data(), data.size(), MSG_NOSIGNAL);
  }
  close(fd);
}

Bytes FramedStream(const Bytes& payload, uint32_t announced_size) {
  Bytes out;
  out.push_back(static_cast<uint8_t>(announced_size >> 24));
  out.push_back(static_cast<uint8_t>(announced_size >> 16));
  out.push_back(static_cast<uint8_t>(announced_size >> 8));
  out.push_back(static_cast<uint8_t>(announced_size));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

TEST_F(MalformedPacketTest, StreamServersSurviveGarbageAndStayLive) {
  // Stream serving always rides the shared reactor: one poisoned connection
  // must never stall the loop that every other endpoint depends on.
  UdpServerHost host(ServeMode::kReactor);

  for (Target& target : targets_) {
    SCOPED_TRACE(target.label);
    Result<uint16_t> port = host.ServeStream(target.rpc, 0);
    ASSERT_TRUE(port.ok()) << port.status();

    // An absurd frame-length announcement, then silence.
    BlindTcpSend(*port, FramedStream(Bytes{}, 0xffffffffu));
    // A frame that promises 64 bytes and delivers 3, then closes mid-frame.
    BlindTcpSend(*port, FramedStream(Bytes{1, 2, 3}, 64));
    // Garbage with a plausible header: 60 bytes of junk, correctly framed.
    BlindTcpSend(*port, FramedStream(PatternBytes(60), 60));
    // No header at all: the connection dies after two bytes.
    BlindTcpSend(*port, Bytes{0xff, 0x00});

    // The reactor must still serve this endpoint: a well-formed framed call
    // over a fresh connection gets a well-formed reply.
    TcpStreamTransport transport(/*timeout_ms=*/4000);
    Result<Bytes> reply =
        transport.RoundTrip("client", "localhost", *port, ValidCall(target));
    ASSERT_TRUE(reply.ok())
        << target.label << " stream endpoint wedged: " << reply.status();
    const ControlProtocol& control = GetControlProtocol(target.rpc->control_kind());
    EXPECT_TRUE(control.DecodeReply(*reply).ok());
  }
  host.StopAll();
}

}  // namespace
}  // namespace hcs
