// Unit tests for src/baseline: the reregistration-based binding schemes.

#include <gtest/gtest.h>

#include "src/baseline/ch_only_binder.h"
#include "src/baseline/local_file_binder.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

TEST(LocalFileBinderTest, FindsReregisteredEntries) {
  Testbed bed;
  auto binder = bed.MakeLocalFileBinder();
  Result<HrpcBinding> binding = binder->Bind(kDesiredService, kSunServerHost);
  ASSERT_TRUE(binding.ok()) << binding.status();
  EXPECT_EQ(binding->port, kDesiredServicePort);
  EXPECT_EQ(binding->bind_protocol, BindProtocol::kLocalFile);
  EXPECT_NE(binding->address, 0u);
}

TEST(LocalFileBinderTest, MissingEntryMeansStaleReplica) {
  Testbed bed;
  auto binder = bed.MakeLocalFileBinder();
  EXPECT_EQ(binder->Bind("BrandNewService", kSunServerHost).status().code(),
            StatusCode::kNotFound);
}

TEST(LocalFileBinderTest, EveryChangeIsAReregistration) {
  ReplicatedBindingFile file;
  EXPECT_EQ(file.registrations(), 0u);
  file.Register("h1", "s1", 1, 1, 17, 100);
  file.Register("h1", "s2", 2, 1, 17, 100);
  EXPECT_EQ(file.registrations(), 2u);
  EXPECT_EQ(file.line_count(), 2u);
}

TEST(LocalFileBinderTest, ScanCostGrowsWithFileSize) {
  Testbed bed;
  auto binder = bed.MakeLocalFileBinder();
  double t0 = bed.world().clock().NowMs();
  (void)binder->Bind(kDesiredService, kSunServerHost);  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double small_file = bed.world().clock().NowMs() - t0;

  // Blow the file up tenfold and bind again through a second binder.
  auto file = std::make_shared<ReplicatedBindingFile>();
  for (int i = 0; i < 400; ++i) {
    file->Register("hostx", "svc" + std::to_string(i), 1000 + i, 1, 17, 7);
  }
  HostInfo fiji = bed.world().network().GetHost(kSunServerHost).value();
  file->Register(kSunServerHost, kDesiredService, kDesiredServiceProgram, 1, 17,
                 fiji.address);
  LocalFileBinder big(&bed.world(), kClientHost, &bed.transport(), file);
  t0 = bed.world().clock().NowMs();
  (void)big.Bind(kDesiredService, kSunServerHost);  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double big_file = bed.world().clock().NowMs() - t0;
  EXPECT_GT(big_file, small_file);
}

TEST(ChOnlyBinderTest, BindsFromReregisteredRegistry) {
  Testbed bed;
  auto binder = bed.MakeChOnlyBinder();
  Result<HrpcBinding> binding = binder->Bind(kDesiredService, kSunServerHost);
  ASSERT_TRUE(binding.ok()) << binding.status();
  EXPECT_EQ(binding->port, kDesiredServicePort);
  EXPECT_EQ(binding->program, kDesiredServiceProgram);
}

TEST(ChOnlyBinderTest, RegisterThenBindRoundTrip) {
  Testbed bed;
  auto binder = bed.MakeChOnlyBinder();
  ASSERT_TRUE(binder->Register("newhost", "newservice", 999, 1, 1234, 0xdead).ok());
  Result<HrpcBinding> binding = binder->Bind("newservice", "newhost");
  ASSERT_TRUE(binding.ok()) << binding.status();
  EXPECT_EQ(binding->port, 1234);
  EXPECT_EQ(binding->address, 0xdeadu);
}

TEST(ChOnlyBinderTest, UnregisteredServiceNotFound) {
  Testbed bed;
  auto binder = bed.MakeChOnlyBinder();
  EXPECT_EQ(binder->Bind("ghost", kSunServerHost).status().code(), StatusCode::kNotFound);
}

// The paper's comparison: one authenticated Clearinghouse access makes the
// CH-only scheme faster than a cold HNS query but it pays reregistration
// forever; the local-file scheme is slower than both warm paths.
TEST(BaselineComparisonTest, RelativeOrderingMatchesThePaper) {
  Testbed bed;
  auto file_binder = bed.MakeLocalFileBinder();
  auto ch_binder = bed.MakeChOnlyBinder();

  double t0 = bed.world().clock().NowMs();
  ASSERT_TRUE(file_binder->Bind(kDesiredService, kSunServerHost).ok());
  double file_ms = bed.world().clock().NowMs() - t0;

  t0 = bed.world().clock().NowMs();
  ASSERT_TRUE(ch_binder->Bind(kDesiredService, kSunServerHost).ok());
  double ch_ms = bed.world().clock().NowMs() - t0;

  EXPECT_GT(file_ms, ch_ms) << "paper: 200 ms vs 166 ms";
}

}  // namespace
}  // namespace hcs
