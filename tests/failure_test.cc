// Failure injection: servers vanishing mid-run, bad credentials, garbled
// messages, unregistered components — every path must surface a clean
// Status, never a crash or a hang. The outage scenarios run through the
// seeded FaultInjector (five fixed seeds each) rather than ad-hoc service
// toggles, so a failure replays byte-identically from its seed.

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/hns/import.h"
#include "src/rpc/fault.h"
#include "src/rpc/ports.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

HnsName SunName() {
  return HnsName::Parse(std::string(kContextBindBinding) + "!" + kSunServerHost).value();
}

// Each scenario runs once per seed: the injector's decision streams (and so
// the whole simulated run) are pure functions of the seed.
class SeededFailureTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededFailureTest,
                         ::testing::Values(uint64_t{1}, uint64_t{7}, uint64_t{42},
                                           uint64_t{1999}, uint64_t{0xc0ffee}));

TEST_P(SeededFailureTest, MetaBlackholeMakesColdQueriesUnavailable) {
  Testbed bed;
  FaultInjector injector(FaultConfig{GetParam(), {}});
  bed.InstallFaultInjector(&injector);
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  client.FlushAll();

  // Both the secondary and the primary become unreachable.
  injector.BlackholeEndpoint(kMetaSecondaryHost);
  injector.BlackholeEndpoint(kMetaBindHost);

  Importer importer(client.session.get());
  EXPECT_EQ(importer.Import(kDesiredService, SunName()).status().code(),
            StatusCode::kUnavailable);
  EXPECT_GT(injector.stats().blackholed, 0u) << "the outage ran through the injector";
}

TEST_P(SeededFailureTest, WarmCacheSurvivesMetaBlackhole) {
  Testbed bed;
  FaultInjector injector(FaultConfig{GetParam(), {}});
  bed.InstallFaultInjector(&injector);
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Importer importer(client.session.get());
  ASSERT_TRUE(importer.Import(kDesiredService, SunName()).ok());

  // The meta store can now disappear: cached mappings keep working until
  // their TTLs run out — the availability argument for caching.
  injector.BlackholeEndpoint(kMetaSecondaryHost);
  injector.BlackholeEndpoint(kMetaBindHost);
  EXPECT_TRUE(importer.Import(kDesiredService, SunName()).ok());

  // After TTL expiry the outage becomes visible.
  bed.world().clock().AdvanceMs(3601.0 * 1000.0);
  EXPECT_EQ(importer.Import(kDesiredService, SunName()).status().code(),
            StatusCode::kUnavailable);

  // Healing the endpoints restores cold resolution.
  injector.HealEndpoint(kMetaSecondaryHost);
  injector.HealEndpoint(kMetaBindHost);
  EXPECT_TRUE(importer.Import(kDesiredService, SunName()).ok());
}

TEST_P(SeededFailureTest, LossyMetaPathResolvesWithinBoundedRetries) {
  Testbed bed;
  FaultInjector injector(FaultConfig{GetParam(), {}});
  bed.InstallFaultInjector(&injector);
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  client.FlushAll();

  // 40% loss toward both meta servers. The simulated transport makes one
  // attempt per call, so the scenario retries at its own level — bounded,
  // and deterministic for the seed.
  FaultSpec lossy;
  lossy.drop = 0.4;
  injector.SetPlan(FaultPlan{kMetaSecondaryHost, {FaultPhase{0, lossy}}});
  injector.SetPlan(FaultPlan{kMetaBindHost, {FaultPhase{0, lossy}}});

  Importer importer(client.session.get());
  constexpr int kMaxTries = 20;
  Result<HrpcBinding> imported = UnavailableError("not attempted");
  int tries = 0;
  for (; tries < kMaxTries; ++tries) {
    imported = importer.Import(kDesiredService, SunName());
    if (imported.ok()) {
      break;
    }
    // An injected drop looks like loss, never like a refusal.
    EXPECT_TRUE(imported.status().code() == StatusCode::kTimeout ||
                imported.status().code() == StatusCode::kUnavailable)
        << imported.status();
  }
  EXPECT_TRUE(imported.ok()) << "seed " << GetParam() << " did not resolve within "
                             << kMaxTries << " tries: " << imported.status();
  EXPECT_GT(injector.stats().decisions, 0u);
}

TEST(FailureTest, UnderlyingNameServiceOutageOnlyBreaksItsSubsystemsData) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  WireValue no_args = WireValue::OfRecord({});
  HnsName xerox_name = HnsName::Parse("CH!Dorado:CSL:Xerox").value();

  // Warm the meta mappings (note: even a Clearinghouse-side FindNSM resolves
  // its NSM's host address through BIND — the NSM processes live on Unix
  // hosts — so a *cold* FindNSM does depend on BIND being up).
  ASSERT_TRUE(client.session->Query(xerox_name, kQueryClassHostAddress, no_args).ok());

  bed.world().UnregisterService(kPublicBindHost, kBindPort);

  // BIND-side *data* lookups fail for uncached names...
  HnsName unix_name = HnsName::Parse("BIND!cascade.cs.washington.edu").value();
  EXPECT_EQ(
      client.session->Query(unix_name, kQueryClassHostAddress, no_args).status().code(),
      StatusCode::kUnavailable);
  // ...while Clearinghouse-side data keeps answering, including names never
  // queried before: the data path touches only the CH.
  HnsName fresh = HnsName::Parse("CH!Dandelion:CSL:Xerox").value();
  EXPECT_TRUE(client.session->Query(fresh, kQueryClassHostAddress, no_args).ok());
}

TEST_P(SeededFailureTest, RemoteNsmBlackholeReportsUnavailable) {
  Testbed bed;
  FaultInjector injector(FaultConfig{GetParam(), {}});
  bed.InstallFaultInjector(&injector);
  ClientSetup client = bed.MakeClient(Arrangement::kAllRemote);
  client.FlushAll();
  // FindNSM still works (the HNS server is reachable); the designated NSM's
  // host is not, and the outage surfaces as kUnavailable at the client.
  injector.BlackholeEndpoint(kNsmServerHost);

  WireValue args = RecordBuilder().Str("service", kDesiredService).Build();
  EXPECT_EQ(client.session->Query(SunName(), kQueryClassHrpcBinding, args).status().code(),
            StatusCode::kUnavailable);
  EXPECT_GT(injector.stats().blackholed, 0u);
}

TEST(FailureTest, PermissionDeniedPropagatesFromClearinghouseToClient) {
  Testbed bed;
  // An NSM configured with bad credentials: the Clearinghouse rejects each
  // access, and the denial travels through the NSM to the client intact.
  NsmInfo info = bed.HostAddrChInfo();
  info.nsm_name = "BadCredsNSM";
  auto bad_nsm = std::make_shared<ChHostAddressNsm>(
      &bed.world(), kClientHost, &bed.transport(), info, kChServerHost,
      ChCredentials{"Mallory:CSL:Xerox", "guess"});
  HnsName name = HnsName::Parse("CH!Dorado:CSL:Xerox").value();
  Result<WireValue> result = bad_nsm->Query(name, WireValue::OfRecord({}));
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
}

TEST(FailureTest, GarbledMessageIsAProtocolError) {
  Testbed bed;
  // Spray junk at the public BIND server's port.
  Result<Bytes> reply = bed.world().RoundTrip(kClientHost, kPublicBindHost, kBindPort,
                                              Bytes{0xde, 0xad, 0xbe, 0xef});
  EXPECT_EQ(reply.status().code(), StatusCode::kProtocolError);
}

TEST(FailureTest, WrongPortSpeaksTheWrongProtocol) {
  Testbed bed;
  // A Sun RPC call aimed at the (raw-protocol) BIND port cannot parse.
  RpcClient client(&bed.world(), kClientHost, &bed.transport());
  HrpcBinding wrong;
  wrong.host = kPublicBindHost;
  wrong.port = kBindPort;
  wrong.program = kBindProgram;
  wrong.control = ControlKind::kSunRpc;  // BIND speaks Raw
  Result<Bytes> reply = client.Call(wrong, kBindProcQuery, Bytes{});
  EXPECT_FALSE(reply.ok());
}

TEST(FailureTest, AddressRecursionIsBoundedWithoutLinkedNsms) {
  Testbed bed;
  // A bare HNS with *no* linked NSMs anywhere and no remote host-address NSM
  // servers would recurse to resolve the host-address NSM's own host; the
  // depth guard turns that into an error instead of infinite recursion.
  TestbedOptions options;
  options.install_remote_servers = false;
  Testbed isolated(options);
  HnsOptions hns_options;
  hns_options.meta_server_host = kMetaSecondaryHost;
  hns_options.meta_authority_host = kMetaBindHost;
  Hns bare(&isolated.world(), kClientHost, &isolated.transport(), hns_options);

  Result<uint32_t> address = bare.ResolveHostAddress(kContextBind, kSunServerHost);
  EXPECT_FALSE(address.ok());
  EXPECT_EQ(address.status().code(), StatusCode::kUnavailable);
}

TEST(FailureTest, AgentWithoutNsmsFailsCleanly) {
  TestbedOptions options;
  Testbed bed(options);
  // Install a second agent with no linked NSMs on a fresh host.
  ASSERT_TRUE(
      bed.world().network().AddHost("empty-agent.cs.washington.edu", MachineType::kMicroVax,
                                    OsType::kUnix)
          .ok());
  HnsOptions hns_options;
  hns_options.meta_server_host = kMetaSecondaryHost;
  hns_options.meta_authority_host = kMetaBindHost;
  AgentServer* empty = AgentServer::InstallOn(&bed.world(), "empty-agent.cs.washington.edu",
                                              hns_options, {})
                           .value();
  (void)empty;

  SessionOptions session_options;
  session_options.hns_location = HnsLocation::kAgent;
  session_options.agent_host = "empty-agent.cs.washington.edu";
  HnsSession session(&bed.world(), kClientHost, &bed.transport(), session_options);
  WireValue args = RecordBuilder().Str("service", kDesiredService).Build();
  Result<WireValue> result = session.Query(SunName(), kQueryClassHrpcBinding, args);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(FailureTest, OversizedMetaRecordsAreChunkedNotRejected) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  MetaStore& meta = client.session->local_hns()->meta();
  // An NSM record with very long names encodes past the 256-byte record
  // limit; registration must succeed via chunking and read back intact.
  NsmInfo info;
  info.nsm_name = std::string(100, 'n');
  info.query_class = "LongQueryClass-" + std::string(80, 'q');
  info.ns_name = kNsBind;
  info.host = std::string(90, 'h') + ".cs.washington.edu";
  info.host_context = kContextBind;
  info.program = kNsmProgram;
  info.port = 999;
  ASSERT_TRUE(meta.RegisterNsm(info).ok());
  Result<NsmInfo> read_back = meta.NsmLocation(info.nsm_name);
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  EXPECT_EQ(read_back->host, info.host);
  EXPECT_EQ(read_back->query_class, info.query_class);
}

}  // namespace
}  // namespace hcs
