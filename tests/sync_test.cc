// The synchronization layer: mutual exclusion through hcs::Mutex/MutexLock,
// CondVar wakeups, contention/held-time counters, the named-mutex registry,
// and — the part with teeth — the lock-order deadlock detector aborting on
// a seeded A→B/B→A inversion.

#include "src/common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace hcs {
namespace {

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;  // deliberately unsynchronized except through mu
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, kThreads * kIncrements);
  EXPECT_GE(mu.Stats().acquisitions, static_cast<uint64_t>(kThreads * kIncrements));
}

TEST(SyncTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> failed_while_held{false};
  std::thread prober([&] { failed_while_held = !mu.TryLock(); });
  prober.join();
  EXPECT_TRUE(failed_while_held.load());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, CondVarWakesPredicateWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::string message;
  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    message += " world";
  });
  {
    MutexLock lock(mu);
    message = "hello";
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(message, "hello world");
}

TEST(SyncTest, ContentionCounterSeesForcedContention) {
  Mutex mu("contention-probe");
  std::atomic<bool> holder_has_lock{false};
  std::thread holder([&] {
    MutexLock lock(mu);
    holder_has_lock = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  while (!holder_has_lock.load()) {
    std::this_thread::yield();
  }
  {
    MutexLock lock(mu);  // must block behind the holder
  }
  holder.join();
  MutexStats stats = mu.Stats();
  EXPECT_EQ(stats.acquisitions, 2u);
  EXPECT_GE(stats.contended, 1u);
}

TEST(SyncTest, TimingAccountsWaitAndHeldTime) {
  SetMutexTimingEnabled(true);
  Mutex mu("timing-probe");
  {
    MutexLock lock(mu);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  SetMutexTimingEnabled(false);
  MutexStats stats = mu.Stats();
  EXPECT_GE(stats.held_ns, 10u * 1000 * 1000) << "a 20 ms hold must be visible";
}

TEST(SyncTest, RegistryExposesNamedMutexes) {
  Mutex named("registry-probe");
  {
    MutexLock lock(named);
  }
  bool found = false;
  for (const MutexStats& stats : AllMutexStats()) {
    if (stats.name == "registry-probe") {
      found = true;
      EXPECT_GE(stats.acquisitions, 1u);
    }
  }
  EXPECT_TRUE(found) << "named mutexes must appear in AllMutexStats()";
}

TEST(SyncTest, ConsistentLockOrderDoesNotTrip) {
  SetDeadlockDetectorEnabled(true);
  Mutex a("order-a");
  Mutex b("order-b");
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);  // always a before b: a -> b edge only, no cycle
  }
  SetDeadlockDetectorEnabled(false);
}

// The acceptance-criteria death test: seed the graph with A -> B, then
// acquire in the inverted order. The detector must abort before the
// processes could deadlock, naming both acquisition contexts.
TEST(SyncDeathTest, LockOrderInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetDeadlockDetectorEnabled(true);
        ResetLockOrderGraph();
        Mutex a("inversion-a");
        Mutex b("inversion-b");
        {
          MutexLock la(a);
          MutexLock lb(b);  // records a -> b
        }
        {
          MutexLock lb(b);
          MutexLock la(a);  // b -> a closes the cycle: abort
        }
      },
      "lock-order inversion");
}

// Three-lock cycle through an intermediate edge: A -> B, B -> C, then C -> A.
TEST(SyncDeathTest, TransitiveInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetDeadlockDetectorEnabled(true);
        ResetLockOrderGraph();
        Mutex a("chain-a");
        Mutex b("chain-b");
        Mutex c("chain-c");
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock lc(c);
        }
        {
          MutexLock lc(c);
          MutexLock la(a);  // c -> a, but a -> b -> c is on record
        }
      },
      "lock-order inversion");
}

}  // namespace
}  // namespace hcs
