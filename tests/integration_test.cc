// End-to-end integration: the full Import flow of §3 over the simulated
// testbed, across colocation arrangements, plus the paper's core
// direct-access claims (native updates visible globally, no reregistration).

#include <gtest/gtest.h>

#include "src/hns/import.h"
#include "src/rpc/ports.h"
#include "src/common/strings.h"
#include "src/testbed/testbed.h"
#include "src/wire/xdr.h"

namespace hcs {
namespace {

HnsName SunHostName() {
  HnsName name;
  name.context = kContextBindBinding;
  name.individual = kSunServerHost;
  return name;
}

TEST(ImportIntegration, AllLinkedArrangementBindsAndCalls) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Importer importer(client.session.get());

  Result<HrpcBinding> binding = importer.Import(kDesiredService, SunHostName());
  ASSERT_TRUE(binding.ok()) << binding.status();
  EXPECT_EQ(binding->host, kSunServerHost);
  EXPECT_EQ(binding->port, kDesiredServicePort);
  EXPECT_EQ(binding->program, kDesiredServiceProgram);
  EXPECT_EQ(binding->control, ControlKind::kSunRpc);
  EXPECT_EQ(binding->data_rep, DataRep::kXdr);
  EXPECT_NE(binding->address, 0u);

  // The binding is directly usable: call the service through HRPC.
  RpcClient rpc(&bed.world(), kClientHost, &bed.transport());
  XdrEncoder enc;
  enc.PutString("hello fiji");
  Result<Bytes> reply = rpc.Call(*binding, 1, enc.Take());
  ASSERT_TRUE(reply.ok()) << reply.status();
  XdrDecoder dec(*reply);
  EXPECT_EQ(dec.GetString().value(), "hello fiji");
}

TEST(ImportIntegration, EveryArrangementProducesTheSameBinding) {
  Testbed bed;
  Result<HrpcBinding> reference(InternalError("unset"));
  for (Arrangement arrangement :
       {Arrangement::kAllLinked, Arrangement::kAgent, Arrangement::kRemoteHns,
        Arrangement::kRemoteNsms, Arrangement::kAllRemote}) {
    SCOPED_TRACE(ArrangementName(arrangement));
    ClientSetup client = bed.MakeClient(arrangement);
    client.FlushAll();
    Importer importer(client.session.get());
    Result<HrpcBinding> binding = importer.Import(kDesiredService, SunHostName());
    ASSERT_TRUE(binding.ok()) << binding.status();
    if (!reference.ok()) {
      reference = binding;
    } else {
      EXPECT_EQ(*binding, *reference);
    }
  }
}

TEST(ImportIntegration, CourierServiceBindsThroughChNsm) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Importer importer(client.session.get());

  HnsName name;
  name.context = kContextChBinding;
  name.individual = kXeroxServerHost;
  Result<HrpcBinding> binding = importer.Import(kPrintService, name);
  ASSERT_TRUE(binding.ok()) << binding.status();
  EXPECT_EQ(binding->control, ControlKind::kCourier);
  EXPECT_EQ(binding->data_rep, DataRep::kCourier);
  EXPECT_EQ(binding->port, kPrintServicePort);

  // Call the Courier service end to end.
  RpcClient rpc(&bed.world(), kClientHost, &bed.transport());
  Result<Bytes> reply = rpc.Call(*binding, 1, Bytes{1, 2, 3, 4});
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, (Bytes{1, 2, 3, 4}));
}

// The direct-access property: a change made through *native* name service
// operations (here, a BIND dynamic update... the paper's modified BIND; for
// the public zone we model a host renumbering applied directly at the
// server) is visible through the HNS with no reregistration step.
TEST(ImportIntegration, NativeUpdateVisibleThroughHnsWithoutReregistration) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);

  HnsName host_name;
  host_name.context = kContextBind;
  host_name.individual = "newmachine.cs.washington.edu";

  // Not there yet.
  WireValue no_args = WireValue::OfRecord({});
  Result<WireValue> before =
      client.session->Query(host_name, kQueryClassHostAddress, no_args);
  EXPECT_FALSE(before.ok());

  // A new machine is added via the *local* name service's own operation —
  // no HNS registration of any kind.
  Zone* zone = bed.public_bind()->FindZone("newmachine.cs.washington.edu");
  ASSERT_NE(zone, nullptr);
  ASSERT_TRUE(zone->Add(ResourceRecord::MakeA("newmachine.cs.washington.edu", 0x80017777))
                  .ok());

  Result<WireValue> after =
      client.session->Query(host_name, kQueryClassHostAddress, no_args);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->Uint32Field("address").value(), 0x80017777u);
}

TEST(ImportIntegration, ColdFindNsmPerformsSixRemoteLookups) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  client.FlushAll();
  Hns* hns = client.session->local_hns();
  bed.world().stats().Clear();

  Result<NsmHandle> handle = hns->FindNsm(SunHostName(), kQueryClassHrpcBinding);
  ASSERT_TRUE(handle.ok()) << handle.status();
  // The binding NSM is linked into the client (row 1), but FindNSM still
  // determines the full handle: three meta mappings plus the recursive
  // host-address resolution (two more meta mappings and one underlying
  // name-service lookup) — six remote data lookups in all.
  EXPECT_TRUE(handle->is_linked());
  EXPECT_EQ(hns->meta().remote_lookups(), 5u);
  std::string bind_key = AsciiToLower(std::string(kPublicBindHost) + ":53");
  EXPECT_EQ(bed.world().stats().messages_per_endpoint[bind_key], 1u);

  // A remote NSM runs the same sequence and yields a callable binding.
  ClientSetup remote = bed.MakeClient(Arrangement::kRemoteNsms);
  remote.FlushAll();
  Hns* remote_hns = remote.session->local_hns();
  bed.world().stats().Clear();
  Result<NsmHandle> remote_handle =
      remote_hns->FindNsm(SunHostName(), kQueryClassHrpcBinding);
  ASSERT_TRUE(remote_handle.ok()) << remote_handle.status();
  EXPECT_FALSE(remote_handle->is_linked());
  // Five meta-store lookups...
  EXPECT_EQ(remote_hns->meta().remote_lookups(), 5u);
  // ...plus exactly one underlying name-service lookup (the public BIND).
  std::string public_bind_key = std::string(kPublicBindHost) + ":53";
  EXPECT_EQ(bed.world().stats().messages_per_endpoint[AsciiToLower(public_bind_key)], 1u);
}

TEST(ImportIntegration, WarmCacheEliminatesAllRemoteCalls) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Importer importer(client.session.get());
  ASSERT_TRUE(importer.Import(kDesiredService, SunHostName()).ok());

  bed.world().stats().Clear();
  Result<HrpcBinding> binding = importer.Import(kDesiredService, SunHostName());
  ASSERT_TRUE(binding.ok()) << binding.status();
  EXPECT_EQ(bed.world().stats().total_messages, 0u)
      << "a fully warm linked client should not touch the network";
}

}  // namespace
}  // namespace hcs
