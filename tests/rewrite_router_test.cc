// The sendmail comparator: what §4's rewriting-rule critique looks like in
// running code, next to the context-routed MailAgent.

#include <gtest/gtest.h>

#include "src/apps/mail.h"
#include "src/baseline/rewrite_router.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

TEST(RewriteRouterTest, RoutesTheEasyCases) {
  RewriteRouter router(TestbedRewriteRules());

  Result<RouteDecision> unix_route = router.Route("notkin@cs.washington.edu");
  ASSERT_TRUE(unix_route.ok());
  EXPECT_EQ(unix_route->network, "internet");
  EXPECT_EQ(unix_route->mailbox_query, "cs.washington.edu");

  Result<RouteDecision> xns_route = router.Route("Purcell:CSL:Xerox");
  ASSERT_TRUE(xns_route.ok());
  EXPECT_EQ(xns_route->network, "xns");
  EXPECT_EQ(xns_route->mailbox_query, "Purcell:CSL:Xerox");

  EXPECT_EQ(router.Route("plainname").status().code(), StatusCode::kNotFound);
}

TEST(RewriteRouterTest, AmbiguousSyntaxRoutesByRuleOrderSilently) {
  RewriteRouter router(TestbedRewriteRules());
  // A Xerox user whose *object name* contains an '@' (nothing forbids it):
  // syntactically this matches both worlds. The router picks whichever rule
  // fires first — here "has-colon" precedes "has-at", so it goes to XNS;
  // reorder the table and the same name silently reroutes. No error is
  // reported either way: this is the paper's "reflects the complexity of
  // heterogeneous naming to clients and users".
  Result<RouteDecision> route = router.Route("user@host:CSL:Xerox");
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->network, "xns");

  std::vector<RewriteRule> reordered = TestbedRewriteRules();
  std::swap(reordered[1], reordered[2]);
  RewriteRouter reordered_router(std::move(reordered));
  Result<RouteDecision> reroute = reordered_router.Route("user@host:CSL:Xerox");
  ASSERT_TRUE(reroute.ok());
  EXPECT_EQ(reroute->network, "internet") << "same name, different destination";
}

TEST(RewriteRouterTest, NewNetworksRequireShippingRulesEverywhere) {
  // Integrating a new network under rewriting rules = a bigger table on
  // every host. Under the HNS it was three registrations in one place
  // (bench_scaling measures that); here we just count what grows.
  std::vector<RewriteRule> rules = TestbedRewriteRules();
  size_t hosts = 29;  // every machine running a mail agent
  size_t rules_shipped_before = rules.size() * hosts;
  rules.push_back({"contains:!", "uucp", "whole"});  // the new network
  size_t rules_shipped_after = rules.size() * hosts;
  EXPECT_EQ(rules_shipped_after - rules_shipped_before, hosts)
      << "one new network touches every host's configuration";
}

TEST(RewriteRouterTest, ContextRoutingNeedsNoSyntaxGuessing) {
  // The same ambiguous recipient is unambiguous under the HNS because the
  // *context* names the world; no rule table exists to misorder.
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  MailAgent mta(client.session.get());

  // Deliver explicitly into each world; the '@'-bearing XNS name would have
  // confused the rewriting rules above, but the Mail-CH context settles it:
  // the Clearinghouse — the *right* world — is consulted and answers "no
  // such user" loudly, instead of a syntax guess misrouting the message.
  Result<std::string> xns = mta.Deliver("Mail-CH!user@host:CSL:Xerox", "m");
  EXPECT_EQ(xns.status().code(), StatusCode::kNotFound);

  Result<std::string> unix_side = mta.Deliver("Mail-BIND!notkin@cs.washington.edu", "m");
  EXPECT_TRUE(unix_side.ok()) << unix_side.status();
}

}  // namespace
}  // namespace hcs
