// The full configuration grid: every colocation arrangement crossed with
// every cache mode must produce identical results, and within each cell the
// cache-state cost ordering A >= B >= C of Table 3.1 must hold. This is the
// repository's broadest single invariant sweep (15 configurations).

#include <gtest/gtest.h>

#include "src/hns/import.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

using GridParam = std::tuple<Arrangement, CacheMode>;

class GridTest : public ::testing::TestWithParam<GridParam> {
 protected:
  static std::string HostNameText() {
    return std::string(kContextBindBinding) + "!" + kSunServerHost;
  }
};

TEST_P(GridTest, ImportIsCorrectAndCacheStateOrderingHolds) {
  auto [arrangement, cache_mode] = GetParam();
  TestbedOptions options;
  options.hns_cache_mode = cache_mode;
  options.nsm_cache_mode = cache_mode;
  Testbed bed(options);
  ClientSetup client = bed.MakeClient(arrangement);
  Importer importer(client.session.get());

  // Column A: everything cold.
  client.FlushAll();
  double before = bed.world().clock().NowMs();
  Result<HrpcBinding> cold = importer.Import(kDesiredService, HostNameText());
  double a = bed.world().clock().NowMs() - before;
  ASSERT_TRUE(cold.ok()) << cold.status();

  // Column B: HNS warm, NSMs cold. (With caching off entirely, flush the
  // shared infrastructure too so every run is equally cold — the meta
  // secondary's forward cache warms regardless of client cache mode.)
  if (cache_mode == CacheMode::kNone) {
    client.FlushAll();
  } else {
    client.FlushNsmCaches();
  }
  before = bed.world().clock().NowMs();
  Result<HrpcBinding> half_warm = importer.Import(kDesiredService, HostNameText());
  double b = bed.world().clock().NowMs() - before;
  ASSERT_TRUE(half_warm.ok()) << half_warm.status();

  // Column C: everything warm (or, with caching off, cold again).
  if (cache_mode == CacheMode::kNone) {
    client.FlushAll();
  }
  before = bed.world().clock().NowMs();
  Result<HrpcBinding> warm = importer.Import(kDesiredService, HostNameText());
  double c = bed.world().clock().NowMs() - before;
  ASSERT_TRUE(warm.ok()) << warm.status();

  // Correctness is configuration-independent.
  EXPECT_EQ(*cold, *half_warm);
  EXPECT_EQ(*cold, *warm);
  EXPECT_EQ(cold->port, kDesiredServicePort);

  // Cost ordering (with caching off, all three columns coincide).
  if (cache_mode == CacheMode::kNone) {
    EXPECT_NEAR(a, b, 1.0);
    EXPECT_NEAR(b, c, 1.0);
  } else {
    EXPECT_GT(a, b);
    EXPECT_GE(b, c);
  }
}

std::string GridName(const ::testing::TestParamInfo<GridParam>& info) {
  const auto& [arrangement, cache_mode] = info.param;
  std::string name;
  switch (arrangement) {
    case Arrangement::kAllLinked:
      name = "AllLinked";
      break;
    case Arrangement::kAgent:
      name = "Agent";
      break;
    case Arrangement::kRemoteHns:
      name = "RemoteHns";
      break;
    case Arrangement::kRemoteNsms:
      name = "RemoteNsms";
      break;
    case Arrangement::kAllRemote:
      name = "AllRemote";
      break;
  }
  name += "_";
  name += CacheModeName(cache_mode);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, GridTest,
    ::testing::Combine(::testing::Values(Arrangement::kAllLinked, Arrangement::kAgent,
                                         Arrangement::kRemoteHns, Arrangement::kRemoteNsms,
                                         Arrangement::kAllRemote),
                       ::testing::Values(CacheMode::kNone, CacheMode::kMarshalled,
                                         CacheMode::kDemarshalled)),
    GridName);

}  // namespace
}  // namespace hcs
