// The workload scenario suite: the million-client engine over the sim
// testbed. Every scenario is seed-replayable — the run's seed comes from
// HCS_WORKLOAD_SEED (default fixed), every random draw inside the engine is
// a pure function of (seed, actor id), and the determinism tests assert the
// whole run's counter fingerprint is byte-identical across same-seed runs
// and across trace record/replay.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/hns/name.h"
#include "src/rpc/fault.h"
#include "src/rpc/server.h"
#include "src/testbed/testbed.h"
#include "src/workload/distributions.h"
#include "src/workload/driver.h"
#include "src/workload/engine.h"
#include "src/workload/trace.h"

namespace hcs {
namespace {

// HCS_WORKLOAD_SEED wins (how a failing scenario is replayed), else a fixed
// default so CI is deterministic.
uint64_t WorkloadSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("HCS_WORKLOAD_SEED");
    if (env != nullptr && *env != '\0') {
      return static_cast<uint64_t>(std::strtoull(env, nullptr, 0));
    }
    return static_cast<uint64_t>(0x5eedf00d);
  }();
  return seed;
}

uint64_t AnnounceSeed(const char* scenario) {
  uint64_t seed = WorkloadSeed();
  std::cout << "[workload] " << scenario << " seed=" << seed
            << " (replay with HCS_WORKLOAD_SEED=" << seed << ")" << std::endl;
  return seed;
}

// --- Distributions ---------------------------------------------------------

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchPmfByChiSquare) {
  constexpr uint32_t kRanks = 50;
  constexpr uint64_t kDraws = 200'000;
  ZipfSampler zipf(kRanks, /*s=*/1.2);
  Rng rng(AnnounceSeed("zipf-chi-square"));

  std::vector<uint64_t> observed(kRanks, 0);
  std::vector<double> expected(kRanks);
  for (uint32_t r = 0; r < kRanks; ++r) {
    expected[r] = zipf.Pmf(r);
  }
  for (uint64_t i = 0; i < kDraws; ++i) {
    uint32_t rank = zipf.Sample(rng);
    ASSERT_LT(rank, kRanks);
    ++observed[rank];
  }
  // dof = 49; the p = 0.001 critical value is ~85.4. A generator that is
  // even slightly off (wrong exponent, off-by-one rank, biased CDF walk)
  // lands orders of magnitude above this.
  double chi2 = ChiSquareStatistic(observed, expected);
  EXPECT_LT(chi2, 95.0) << "Zipf sample frequencies do not match the PMF";
  // And the PMF itself must be a proper skewed distribution.
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(kRanks - 1));
  double total = 0;
  for (uint32_t r = 0; r < kRanks; ++r) {
    total += zipf.Pmf(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, LargerExponentConcentratesMassAtTheHead) {
  constexpr uint32_t kRanks = 100;
  constexpr uint64_t kDraws = 50'000;
  uint64_t seed = WorkloadSeed();
  auto head_fraction = [&](double s) {
    ZipfSampler zipf(kRanks, s);
    Rng rng(seed);
    uint64_t head = 0;
    for (uint64_t i = 0; i < kDraws; ++i) {
      if (zipf.Sample(rng) == 0) {
        ++head;
      }
    }
    return static_cast<double>(head) / static_cast<double>(kDraws);
  };
  double flat = head_fraction(0.5);
  double skewed = head_fraction(1.5);
  EXPECT_GT(skewed, 2.0 * flat)
      << "s=1.5 should send far more of the traffic to rank 0 than s=0.5";
}

TEST(DistributionsTest, ExponentialInterArrivalHasTheConfiguredMean) {
  constexpr uint64_t kDraws = 100'000;
  constexpr double kRate = 1000.0;  // per second -> mean 1000 us
  Rng rng(WorkloadSeed());
  double total_us = 0;
  for (uint64_t i = 0; i < kDraws; ++i) {
    SimDuration gap = SampleInterArrival(rng, kRate);
    ASSERT_GE(gap, 1);
    total_us += static_cast<double>(gap);
  }
  double mean = total_us / static_cast<double>(kDraws);
  EXPECT_NEAR(mean, 1e6 / kRate, 0.05 * 1e6 / kRate);
}

TEST(DistributionsTest, ChiSquareStatisticSeparatesMatchFromMismatch) {
  std::vector<double> expected = {0.7, 0.2, 0.1};
  std::vector<uint64_t> matching = {7000, 2000, 1000};
  std::vector<uint64_t> mismatched = {1000, 2000, 7000};
  EXPECT_LT(ChiSquareStatistic(matching, expected), 1e-9);
  EXPECT_GT(ChiSquareStatistic(mismatched, expected), 1000.0);
}

// --- Trace codec -----------------------------------------------------------

TEST(WorkloadTraceTest, RoundTripsHeaderAndEvents) {
  WorkloadTrace trace;
  trace.header.seed = 0xabcdef;
  trace.header.population = 12;
  trace.header.contexts = 3;
  trace.header.zipf_s_micros = 1'250'000;
  for (uint32_t k = 0; k <= static_cast<uint32_t>(TraceEventKind::kCacheFlush); ++k) {
    TraceEvent event;
    event.at_us = 1000 + k;
    event.client = k;
    event.kind = static_cast<TraceEventKind>(k);
    event.pair = 2 * k;
    event.count = k == static_cast<uint32_t>(TraceEventKind::kResolveMany) ? 4 : 0;
    trace.events.push_back(event);
  }

  Result<WorkloadTrace> decoded = WorkloadTrace::Decode(trace.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->header.seed, trace.header.seed);
  EXPECT_EQ(decoded->header.population, trace.header.population);
  EXPECT_EQ(decoded->header.contexts, trace.header.contexts);
  EXPECT_EQ(decoded->header.zipf_s_micros, trace.header.zipf_s_micros);
  EXPECT_EQ(decoded->header.event_count, trace.events.size());
  ASSERT_EQ(decoded->events.size(), trace.events.size());
  for (size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(decoded->events[i].at_us, trace.events[i].at_us);
    EXPECT_EQ(decoded->events[i].client, trace.events[i].client);
    EXPECT_EQ(decoded->events[i].kind, trace.events[i].kind);
    EXPECT_EQ(decoded->events[i].pair, trace.events[i].pair);
    EXPECT_EQ(decoded->events[i].count, trace.events[i].count);
  }
}

TEST(WorkloadTraceTest, CorruptEventCountFailsCleanlyBeforeAllocating) {
  WorkloadTrace trace;
  TraceEvent event;
  event.at_us = 1;
  event.kind = TraceEventKind::kFindNsm;
  trace.events.push_back(event);
  Bytes wire = trace.Encode();
  // event_count is the u64 at bytes 28..36 of the header
  // (magic,version,population,contexts,zipf = 5 u32s + the u64 seed).
  ASSERT_GE(wire.size(), 36u);
  for (int i = 0; i < 8; ++i) {
    wire[28 + i] = 0xff;
  }
  Result<WorkloadTrace> decoded = WorkloadTrace::Decode(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// --- Engine scenarios ------------------------------------------------------

WorkloadOptions BaseOptions(uint64_t seed) {
  WorkloadOptions options;
  options.seed = seed;
  options.population = 2'000;
  options.contexts = 16;
  options.zipf_s = 1.0;
  options.arrivals_per_second = 5'000;
  options.mean_queries_per_client = 3.0;
  options.mean_think_ms = 100;
  options.name_services = {kNsBind, kNsCh};
  return options;
}

struct RunOutput {
  WorkloadReport report;
  WorkloadTrace trace;
};

// One full engine run on a fresh all-linked testbed (composite cache on —
// the arrangement a production resolver would run).
Result<RunOutput> RunWorkload(const WorkloadOptions& options) {
  TestbedOptions bed_options;
  bed_options.hns_composite_cache = true;
  Testbed bed(bed_options);
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  WorkloadEngine engine(&bed.world(), client.session.get(), client.session->local_hns(),
                        options);
  HCS_RETURN_IF_ERROR(engine.Setup());
  RunOutput out;
  out.report = engine.Run();
  out.trace = engine.trace();
  return out;
}

TEST(WorkloadEngineTest, PopulationArrivesQueriesAndDeparts) {
  WorkloadOptions options = BaseOptions(AnnounceSeed("population-lifecycle"));
  Result<RunOutput> run = RunWorkload(options);
  ASSERT_TRUE(run.ok()) << run.status();
  const WorkloadCounters& c = run->report.counters;
  EXPECT_EQ(c.arrivals, options.population);
  EXPECT_EQ(c.departures, options.population);
  // Every client issues at least one query and every query is accounted.
  uint64_t total = c.queries_ok + c.queries_not_found + c.queries_failed;
  EXPECT_GE(total, options.population);
  EXPECT_EQ(c.latency_samples, total);
  EXPECT_EQ(c.queries_failed, 0u) << "healthy testbed: no query may fail";
  EXPECT_EQ(c.queries_not_found, 0u) << "every synthetic context is registered";
  EXPECT_GT(run->report.ended_at_us, 0);
  EXPECT_GT(run->report.QueriesPerSimSecond(), 0.0);
  // Zipf-concentrated traffic over a composite cache: overwhelmingly warm.
  EXPECT_GT(run->report.composite_cache.HitFraction(), 0.9);
}

TEST(WorkloadEngineTest, SameSeedRunsAreByteIdentical) {
  WorkloadOptions options = BaseOptions(AnnounceSeed("determinism"));
  Result<RunOutput> a = RunWorkload(options);
  Result<RunOutput> b = RunWorkload(options);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->report.counters.Fingerprint(), b->report.counters.Fingerprint());
  EXPECT_EQ(a->report.ended_at_us, b->report.ended_at_us);
  EXPECT_EQ(a->report.meta_remote_lookups, b->report.meta_remote_lookups);
  EXPECT_EQ(a->report.network_messages, b->report.network_messages);
}

TEST(WorkloadEngineTest, DifferentSeedsDiverge) {
  WorkloadOptions options = BaseOptions(WorkloadSeed());
  WorkloadOptions other = options;
  other.seed = options.seed + 1;
  Result<RunOutput> a = RunWorkload(options);
  Result<RunOutput> b = RunWorkload(other);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_NE(a->report.counters.Fingerprint(), b->report.counters.Fingerprint())
      << "seeds must actually steer the run";
}

TEST(WorkloadEngineTest, ResolveManyBatchesAreCountedAndConcurrent) {
  WorkloadOptions options = BaseOptions(AnnounceSeed("resolve-many"));
  options.population = 500;
  options.resolve_batch = 4;
  Result<RunOutput> run = RunWorkload(options);
  ASSERT_TRUE(run.ok()) << run.status();
  const WorkloadCounters& c = run->report.counters;
  EXPECT_GT(c.batches, 0u);
  // Each batch contributes `resolve_batch` per-name outcomes.
  uint64_t total = c.queries_ok + c.queries_not_found + c.queries_failed;
  EXPECT_EQ(total, c.batches * options.resolve_batch);
  EXPECT_EQ(c.queries_failed, 0u);
}

// The tentpole scale gate: a million virtual clients at Zipf skew complete
// in bounded wall time with byte-identical counters across same-seed runs.
// HCS_WORKLOAD_POPULATION scales the population down for slow (sanitizer)
// builds; the check.sh workload leg sets it explicitly.
TEST(WorkloadEngineTest, MillionClientZipfRunIsDeterministic) {
  uint32_t population = 1'000'000;
  if (const char* env = std::getenv("HCS_WORKLOAD_POPULATION");
      env != nullptr && *env != '\0') {
    population = static_cast<uint32_t>(std::strtoul(env, nullptr, 0));
  }
  WorkloadOptions options = BaseOptions(AnnounceSeed("million-clients"));
  options.population = population;
  options.contexts = 64;
  options.zipf_s = 1.1;
  options.arrivals_per_second = 20'000;
  options.mean_queries_per_client = 2.0;
  options.mean_think_ms = 50;

  auto t0 = std::chrono::steady_clock::now();
  Result<RunOutput> a = RunWorkload(options);
  ASSERT_TRUE(a.ok()) << a.status();
  double first_run_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  Result<RunOutput> b = RunWorkload(options);
  ASSERT_TRUE(b.ok()) << b.status();

  const WorkloadCounters& c = a->report.counters;
  EXPECT_EQ(c.arrivals, population);
  EXPECT_EQ(c.departures, population);
  EXPECT_GE(c.latency_samples, population);
  EXPECT_EQ(c.queries_failed, 0u);
  EXPECT_EQ(a->report.counters.Fingerprint(), b->report.counters.Fingerprint())
      << "million-client runs at one seed must be byte-identical";
  EXPECT_EQ(a->report.ended_at_us, b->report.ended_at_us);
  std::cout << "[workload] million-clients population=" << population << " queries="
            << (c.queries_ok + c.queries_not_found + c.queries_failed)
            << " sim_qps=" << a->report.QueriesPerSimSecond()
            << " p50_ms=" << a->report.p50_ms << " p99_ms=" << a->report.p99_ms
            << " p999_ms=" << a->report.p999_ms << " wall_s=" << first_run_s
            << std::endl;
}

TEST(WorkloadEngineTest, ChurnStormFlapsRegistrationsUnderTraffic) {
  Testbed bed;
  WorkloadOptions options = BaseOptions(AnnounceSeed("churn-storm"));
  options.population = 1'500;
  options.contexts = 4;  // small pair space: the storm pair sees real traffic
  options.zipf_s = 0.5;
  options.mean_queries_per_client = 4.0;
  options.storm_toggles = 40;
  options.storm_rate_per_second = 100;
  options.storm_nsm = bed.BindingBindInfo();
  options.storm_nsm.nsm_name = "wl-storm-nsm";

  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  WorkloadEngine engine(&bed.world(), client.session.get(), client.session->local_hns(),
                        options);
  ASSERT_TRUE(engine.Setup().ok());
  WorkloadReport report = engine.Run();
  const WorkloadCounters& c = report.counters;
  EXPECT_EQ(c.unregisters_ok + c.registers_ok, options.storm_toggles);
  EXPECT_GT(c.unregisters_ok, 0u);
  EXPECT_GT(c.registers_ok, 0u);
  // While the storm NSM is unregistered its pair resolves NotFound; while
  // registered it resolves. Both outcomes must actually occur.
  EXPECT_GT(c.queries_not_found, 0u)
      << "no query landed in an unregistered storm window";
  EXPECT_GT(c.queries_ok, c.queries_not_found);
  EXPECT_EQ(c.queries_failed, 0u);
}

TEST(WorkloadEngineTest, FlashCrowdPromotesTheColdestPair) {
  WorkloadOptions options = BaseOptions(AnnounceSeed("flash-crowd"));
  options.zipf_s = 1.3;
  options.flash_crowd_at_us = 400'000;
  options.flash_burst = 500;
  Result<RunOutput> run = RunWorkload(options);
  ASSERT_TRUE(run.ok()) << run.status();
  const WorkloadCounters& c = run->report.counters;
  uint64_t total = c.queries_ok + c.queries_not_found + c.queries_failed;
  // The burst queries ride on top of the population's own.
  EXPECT_GE(total, options.population + options.flash_burst);
  EXPECT_EQ(c.queries_failed, 0u);
  // The burst hammers one (context, class) pair: after its first miss the
  // composite cache absorbs the crowd.
  EXPECT_GT(run->report.composite_cache.HitFraction(), 0.9);
}

TEST(WorkloadEngineTest, CacheStampedeFlushesAndRecovers) {
  WorkloadOptions options = BaseOptions(AnnounceSeed("stampede"));
  options.stampede_at_us = 400'000;
  options.stampede_burst = 300;
  Result<RunOutput> run = RunWorkload(options);
  ASSERT_TRUE(run.ok()) << run.status();
  const WorkloadCounters& c = run->report.counters;
  EXPECT_EQ(c.cache_flushes, 1u);
  EXPECT_EQ(c.queries_failed, 0u);
  // The flush forces re-resolution: the meta store sees load again and the
  // record cache records fresh misses, yet every query still succeeds.
  EXPECT_GT(run->report.meta_remote_lookups, 0u);
  EXPECT_GT(run->report.record_cache.misses, 0u);
}

// Chaos composition: the engine's scenarios run unchanged under a PR 5
// FaultPlan — query failures show up in the counters, and the composed run
// stays deterministic because fault decisions are keyed by (seed, endpoint,
// sequence) just like the engine's own draws.
TEST(WorkloadEngineTest, ComposesWithFaultPlansDeterministically) {
  uint64_t seed = AnnounceSeed("fault-composition");
  auto run_once = [&]() -> Result<WorkloadReport> {
    Testbed bed;
    // The admin client is built before the injector: registrations use the
    // raw transport (faults must not corrupt the fixture).
    ClientSetup admin = bed.MakeClient(Arrangement::kAllLinked);

    FaultConfig config;
    config.seed = seed;
    FaultPlan plan;
    plan.endpoint = kHnsServerHost;
    FaultPhase phase;
    phase.spec.drop = 0.4;
    plan.phases.push_back(phase);
    config.plans.push_back(plan);
    auto injector = std::make_unique<FaultInjector>(config);
    bed.InstallFaultInjector(injector.get());

    ClientSetup faulted = bed.MakeClient(Arrangement::kRemoteHns);
    WorkloadOptions options = BaseOptions(seed);
    options.population = 300;
    options.mean_queries_per_client = 2.0;
    WorkloadEngine engine(&bed.world(), faulted.session.get(),
                          admin.session->local_hns(), options);
    HCS_RETURN_IF_ERROR(engine.Setup());
    WorkloadReport report = engine.Run();
    bed.InstallFaultInjector(nullptr);
    return report;
  };

  Result<WorkloadReport> a = run_once();
  Result<WorkloadReport> b = run_once();
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_GT(a->counters.queries_failed, 0u)
      << "a 40% drop plan on the HNS server must fail some queries";
  EXPECT_GT(a->counters.queries_ok, 0u) << "retries must still land some queries";
  EXPECT_EQ(a->counters.Fingerprint(), b->counters.Fingerprint())
      << "chaos-composed workload must replay byte-identically";
}

TEST(WorkloadEngineTest, TraceReplayReproducesTheRecordedRun) {
  Testbed record_bed;
  WorkloadOptions options = BaseOptions(AnnounceSeed("trace-replay"));
  options.population = 800;
  options.contexts = 8;
  options.record_trace = true;
  options.storm_toggles = 10;
  options.storm_rate_per_second = 50;
  options.storm_nsm = record_bed.BindingBindInfo();
  options.storm_nsm.nsm_name = "wl-storm-nsm";
  options.stampede_at_us = 400'000;
  options.stampede_burst = 100;

  TestbedOptions bed_options;
  bed_options.hns_composite_cache = true;

  WorkloadReport recorded;
  WorkloadTrace trace;
  {
    Testbed bed(bed_options);
    ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
    WorkloadEngine engine(&bed.world(), client.session.get(),
                          client.session->local_hns(), options);
    ASSERT_TRUE(engine.Setup().ok());
    recorded = engine.Run();
    trace = engine.trace();
  }
  ASSERT_FALSE(trace.events.empty());

  // The trace survives its wire format...
  Result<WorkloadTrace> decoded = WorkloadTrace::Decode(trace.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  // ...and replaying it against an identically-built fresh testbed
  // reproduces the recorded counters exactly — including latencies, since
  // the replay drives the same cache evolution on the same virtual clock.
  {
    Testbed bed(bed_options);
    ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
    WorkloadOptions replay_options = options;
    replay_options.record_trace = false;
    WorkloadEngine engine(&bed.world(), client.session.get(),
                          client.session->local_hns(), replay_options);
    ASSERT_TRUE(engine.Setup().ok());
    Result<WorkloadReport> replayed = engine.Replay(*decoded);
    ASSERT_TRUE(replayed.ok()) << replayed.status();
    EXPECT_EQ(replayed->counters.Fingerprint(), recorded.counters.Fingerprint())
        << "replayed counters diverged from the recorded run";
    EXPECT_EQ(replayed->ended_at_us, recorded.ended_at_us);
  }
}

// --- Shared real-socket driver (hoisted from bench/) -----------------------

TEST(WorkloadDriverTest, AsyncWindowDriverMatchesThreadPerCallSemantics) {
  UdpServerHost host;
  RpcServer server(ControlKind::kRaw, "runtime-sweep");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  Result<uint16_t> port = host.Serve(&server, 0);
  if (!port.ok()) {
    GTEST_SKIP() << "cannot bind a UDP port: " << port.status();
  }

  SweepPoint blocking = DriveClients(*port, /*clients=*/4, /*requests_per_client=*/16);
  EXPECT_EQ(blocking.clients, 4);
  EXPECT_GT(blocking.throughput_qps, 0.0);
  EXPECT_GE(blocking.attempts, 64u);

  SweepPoint async = DriveClientsAsync(*port, /*window=*/4, /*total_requests=*/64);
  EXPECT_EQ(async.clients, 4);
  EXPECT_GT(async.throughput_qps, 0.0);
  EXPECT_GE(async.attempts, 64u);
  host.StopAll();
}

}  // namespace
}  // namespace hcs
