// The async RPC client core over real sockets: CallAsync fan-out on UDP,
// stream pipelining on a single pooled connection, partial-frame
// reassembly with pipelined requests behind it, pool exhaustion, idle
// reaping racing in-flight calls, the sync-fallback channel, and the
// ResolveMany / PrefetchRecords layers built on top.
//
// Delay-bearing servers run on an explicit kReactor host with a fixed
// worker pool, so the wall-clock assertions are independent of the
// HCS_REACTOR environment default (a thread-per-endpoint host serializes
// handlers per endpoint, which would re-serialize the very concurrency
// under test).

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/bindns/protocol.h"
#include "src/bindns/record.h"
#include "src/hns/meta_store.h"
#include "src/hns/session.h"
#include "src/hns/wire_protocol.h"
#include "src/rpc/async_client.h"
#include "src/rpc/client.h"
#include "src/rpc/fault.h"
#include "src/rpc/ports.h"
#include "src/rpc/server.h"
#include "src/rpc/stream_transport.h"
#include "src/rpc/udp_transport.h"
#include "src/wire/xdr.h"

namespace hcs {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count();
}

HrpcBinding UdpBinding(uint16_t port, uint32_t program, ControlKind control) {
  HrpcBinding b;
  b.service_name = "async-test";
  b.host = "localhost";
  b.port = port;
  b.program = program;
  b.version = 2;
  b.control = control;
  b.transport = TransportKind::kUdp;
  return b;
}

HrpcBinding TcpBinding(uint16_t port, uint32_t program, ControlKind control) {
  HrpcBinding b = UdpBinding(port, program, control);
  b.transport = TransportKind::kTcp;
  return b;
}

TEST(AsyncClientTest, UdpFanOutCompletesEveryFuture) {
  UdpServerHost host;
  RpcServer server(ControlKind::kSunRpc, "async-echo");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient client(/*world=*/nullptr, "localclient", &transport);
  AsyncClientEngine engine;
  client.set_async_engine(&engine);

  constexpr int kCalls = 32;
  std::vector<RpcFuture> futures;
  std::vector<Bytes> payloads;
  futures.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    XdrEncoder enc;
    enc.PutUint32(static_cast<uint32_t>(i));
    payloads.push_back(enc.Take());
    futures.push_back(
        client.CallAsync(UdpBinding(*port, 7, ControlKind::kSunRpc), 1, payloads.back()));
  }
  for (int i = 0; i < kCalls; ++i) {
    Result<Bytes> reply = futures[i].Wait();
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(*reply, payloads[i]) << "reply " << i << " matched to the wrong call";
    EXPECT_GE(futures[i].info().attempts, 1u);
  }
  EXPECT_EQ(engine.stats().completed, static_cast<uint64_t>(kCalls));
  host.StopAll();
}

TEST(AsyncClientTest, UdpInFlightCallsShareTheWallClock) {
  constexpr int kCalls = 16;
  constexpr int kDelayMs = 25;
  UdpServerHost host(ServeMode::kReactor, /*reactor_workers=*/8);
  RpcServer server(ControlKind::kRaw, "async-delay");
  server.RegisterProcedure(7, 1, [kDelayMs](const Bytes& args) -> Result<Bytes> {
    std::this_thread::sleep_for(std::chrono::milliseconds(kDelayMs));
    return args;
  });
  Result<uint16_t> port = host.ServeConcurrent(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient client(nullptr, "localclient", &transport);
  AsyncClientEngine engine;
  client.set_async_engine(&engine);

  Clock::time_point start = Clock::now();
  std::vector<RpcFuture> futures;
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(client.CallAsync(UdpBinding(*port, 7, ControlKind::kRaw), 1, Bytes{1}));
  }
  for (RpcFuture& future : futures) {
    ASSERT_TRUE(future.Wait().ok());
  }
  int64_t elapsed = ElapsedMs(start);
  // Sequential would cost kCalls * kDelayMs = 400 ms; 16 in flight across 8
  // server workers cost ~2 delays. The bound leaves a wide scheduling margin
  // while still being unreachable by a serialized client.
  EXPECT_LT(elapsed, kCalls * kDelayMs / 2)
      << "async fan-out did not overlap server-side delays";
  host.StopAll();
}

TEST(AsyncClientTest, StreamPipeliningCompletesOutOfOrderOnOneConnection) {
  UdpServerHost host(ServeMode::kReactor, /*reactor_workers=*/8);
  RpcServer server(ControlKind::kSunRpc, "pipeline");
  server.RegisterProcedure(9, 1, [](const Bytes& args) -> Result<Bytes> {
    // First byte selects the handler latency: the slow call goes out first
    // and must come back last without stalling the fast ones behind it.
    std::this_thread::sleep_for(std::chrono::milliseconds(args.empty() || args[0] != 1 ? 5 : 80));
    return args;
  });
  Result<uint16_t> port = host.ServeStreamConcurrent(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  AsyncEngineOptions options;
  options.max_conns_per_remote = 1;  // force every call onto one pipe
  AsyncClientEngine engine(options);
  TcpStreamTransport transport;
  RpcClient client(nullptr, "localclient", &transport);
  client.set_async_engine(&engine);

  constexpr int kCalls = 8;
  std::mutex order_mu;
  std::vector<int> completion_order;
  std::vector<RpcFuture> futures;
  for (int i = 0; i < kCalls; ++i) {
    Bytes payload{static_cast<uint8_t>(i == 0 ? 1 : 2), static_cast<uint8_t>(i)};
    futures.push_back(
        client.CallAsync(TcpBinding(*port, 9, ControlKind::kSunRpc), 1, payload));
    futures.back().OnComplete([&order_mu, &completion_order, i](const Result<Bytes>&,
                                                               const RpcCallInfo&) {
      std::lock_guard<std::mutex> lock(order_mu);
      completion_order.push_back(i);
    });
  }
  for (int i = 0; i < kCalls; ++i) {
    Result<Bytes> reply = futures[i].Wait();
    ASSERT_TRUE(reply.ok()) << "call " << i << ": " << reply.status();
    ASSERT_EQ(reply->size(), 2u);
    EXPECT_EQ((*reply)[1], static_cast<uint8_t>(i)) << "pipelined reply misrouted";
  }
  EXPECT_EQ(engine.stats().stream_connects, 1u)
      << "pipelined calls must share one connection";
  {
    std::lock_guard<std::mutex> lock(order_mu);
    ASSERT_EQ(completion_order.size(), static_cast<size_t>(kCalls));
    // The slow call was issued first; replies are matched by xid, so the
    // fast calls pipelined behind it complete before it does.
    EXPECT_EQ(completion_order.back(), 0) << "slow head-of-line call should finish last";
  }
  host.StopAll();
}

// A hand-rolled stream server: accepts one connection, reads two pipelined
// requests, then answers with the FIRST reply frame split across two
// writes (the straddle) and the SECOND reply packed into the same final
// write. The client must reassemble the partial frame and still match the
// pipelined reply sitting behind it in the same read.
TEST(AsyncClientTest, PartialFrameStraddlesTwoReadsWithPipelinedReplyBehind) {
  int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(listen_fd, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len), 0);
  uint16_t port = ntohs(addr.sin_port);

  std::thread server([listen_fd] {
    const ControlProtocol& control = GetControlProtocol(ControlKind::kRaw);
    int conn = accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(conn, 0);

    // Read until two complete length-prefixed frames arrive.
    std::vector<uint8_t> buf;
    std::vector<Bytes> requests;
    while (requests.size() < 2) {
      uint8_t chunk[4096];
      ssize_t n = recv(conn, chunk, sizeof(chunk), 0);
      ASSERT_GT(n, 0);
      buf.insert(buf.end(), chunk, chunk + n);
      while (buf.size() >= 4) {
        uint32_t len = (static_cast<uint32_t>(buf[0]) << 24) |
                       (static_cast<uint32_t>(buf[1]) << 16) |
                       (static_cast<uint32_t>(buf[2]) << 8) | buf[3];
        if (buf.size() < 4 + len) {
          break;
        }
        requests.emplace_back(buf.begin() + 4, buf.begin() + 4 + len);
        buf.erase(buf.begin(), buf.begin() + 4 + len);
      }
    }

    auto frame = [&control](const Bytes& request) {
      Result<RpcCall> call = control.DecodeCall(request);
      EXPECT_TRUE(call.ok()) << call.status();
      RpcReplyMsg reply;
      reply.xid = call->xid;
      reply.results = call->args;  // echo
      Bytes body = control.EncodeReply(reply);
      Bytes framed;
      framed.push_back(static_cast<uint8_t>(body.size() >> 24));
      framed.push_back(static_cast<uint8_t>(body.size() >> 16));
      framed.push_back(static_cast<uint8_t>(body.size() >> 8));
      framed.push_back(static_cast<uint8_t>(body.size()));
      framed.insert(framed.end(), body.begin(), body.end());
      return framed;
    };
    Bytes first = frame(requests[0]);
    Bytes second = frame(requests[1]);

    // The straddle: header plus half of the first reply's payload, a pause
    // long enough for the client to drain its socket, then the remainder
    // with the whole second reply glued on.
    size_t split = 4 + (first.size() - 4) / 2;
    ASSERT_EQ(send(conn, first.data(), split, 0), static_cast<ssize_t>(split));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Bytes rest(first.begin() + split, first.end());
    rest.insert(rest.end(), second.begin(), second.end());
    ASSERT_EQ(send(conn, rest.data(), rest.size(), 0), static_cast<ssize_t>(rest.size()));
    // Hold the connection open until the client is done reading.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    close(conn);
  });

  AsyncEngineOptions options;
  options.max_conns_per_remote = 1;
  AsyncClientEngine engine(options);
  TcpStreamTransport transport;
  RpcClient client(nullptr, "localclient", &transport);
  client.set_async_engine(&engine);

  RpcFuture f1 = client.CallAsync(TcpBinding(port, 3, ControlKind::kRaw), 1, Bytes{10, 11, 12});
  RpcFuture f2 = client.CallAsync(TcpBinding(port, 3, ControlKind::kRaw), 1, Bytes{20, 21});
  Result<Bytes> r1 = f1.Wait();
  Result<Bytes> r2 = f2.Wait();
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(*r1, (Bytes{10, 11, 12}));
  EXPECT_EQ(*r2, (Bytes{20, 21}));

  server.join();
  close(listen_fd);
}

TEST(AsyncClientTest, PoolExhaustionQueuesAttemptsAndStillCompletes) {
  UdpServerHost host(ServeMode::kReactor, /*reactor_workers=*/8);
  RpcServer server(ControlKind::kSunRpc, "pool");
  server.RegisterProcedure(9, 1, [](const Bytes& args) -> Result<Bytes> {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return args;
  });
  Result<uint16_t> port = host.ServeStreamConcurrent(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  AsyncEngineOptions options;
  options.max_conns_per_remote = 1;
  options.max_inflight_per_conn = 2;  // window of 2 → calls 3..6 must queue
  AsyncClientEngine engine(options);
  TcpStreamTransport transport;
  RpcClient client(nullptr, "localclient", &transport);
  client.set_async_engine(&engine);

  constexpr int kCalls = 6;
  std::vector<RpcFuture> futures;
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(client.CallAsync(TcpBinding(*port, 9, ControlKind::kSunRpc), 1,
                                       Bytes{static_cast<uint8_t>(i)}));
  }
  for (int i = 0; i < kCalls; ++i) {
    Result<Bytes> reply = futures[i].Wait();
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(*reply, Bytes{static_cast<uint8_t>(i)});
  }
  AsyncEngineStats stats = engine.stats();
  EXPECT_EQ(stats.stream_connects, 1u);
  EXPECT_GE(stats.pool_waits, 1u) << "6 calls through a window of 2 must queue";
  host.StopAll();
}

TEST(AsyncClientTest, IdleConnectionIsReapedAndNextCallRedials) {
  UdpServerHost host;
  RpcServer server(ControlKind::kSunRpc, "reap");
  server.RegisterProcedure(9, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  Result<uint16_t> port = host.ServeStream(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  AsyncEngineOptions options;
  options.idle_reap_ms = 50;
  options.reap_interval_ms = 20;
  AsyncClientEngine engine(options);
  TcpStreamTransport transport;
  RpcClient client(nullptr, "localclient", &transport);
  client.set_async_engine(&engine);

  ASSERT_TRUE(client.CallAsync(TcpBinding(*port, 9, ControlKind::kSunRpc), 1, Bytes{1})
                  .Wait()
                  .ok());
  EXPECT_EQ(engine.stats().stream_connects, 1u);

  Clock::time_point start = Clock::now();
  while (engine.stats().stream_reaped == 0 && ElapsedMs(start) < 2000) {
    engine.ReapIdleNow();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(engine.stats().stream_reaped, 1u) << "idle connection was never reaped";

  ASSERT_TRUE(client.CallAsync(TcpBinding(*port, 9, ControlKind::kSunRpc), 1, Bytes{2})
                  .Wait()
                  .ok());
  EXPECT_EQ(engine.stats().stream_connects, 2u) << "post-reap call should redial";
  host.StopAll();
}

TEST(AsyncClientTest, AggressiveReapingNeverFailsInFlightCalls) {
  UdpServerHost host;
  RpcServer server(ControlKind::kSunRpc, "reap-race");
  server.RegisterProcedure(9, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  Result<uint16_t> port = host.ServeStream(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  AsyncEngineOptions options;
  options.idle_reap_ms = 1;
  options.reap_interval_ms = 1;
  AsyncClientEngine engine(options);
  TcpStreamTransport transport;
  RpcClient client(nullptr, "localclient", &transport);
  client.set_async_engine(&engine);

  // A connection goes idle (and is eligible for reaping) between every
  // pair of calls; reaping must only ever hit idle connections, never a
  // call mid-flight.
  for (int i = 0; i < 40; ++i) {
    RpcFuture future = client.CallAsync(TcpBinding(*port, 9, ControlKind::kSunRpc), 1,
                                        Bytes{static_cast<uint8_t>(i)});
    engine.ReapIdleNow();
    Result<Bytes> reply = future.Wait();
    ASSERT_TRUE(reply.ok()) << "call " << i << ": " << reply.status();
    EXPECT_EQ(*reply, Bytes{static_cast<uint8_t>(i)});
    if (i % 8 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  }
  EXPECT_GE(engine.stats().stream_reaped, 1u);
  host.StopAll();
}

TEST(AsyncClientTest, ChannellessTransportCompletesInline) {
  LoopbackTransport loopback;
  RpcServer server(ControlKind::kSunRpc, "loopback-echo");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  ASSERT_TRUE(loopback.Register(9000, &server).ok());

  RpcClient client(nullptr, "localclient", &loopback);
  HrpcBinding binding = UdpBinding(9000, 7, ControlKind::kSunRpc);
  RpcFuture future = client.CallAsync(binding, 1, Bytes{5, 6});
  // No async channel → the call ran to completion inside CallAsync.
  EXPECT_TRUE(future.ready());
  Result<Bytes> async_reply = future.Wait();
  Result<Bytes> sync_reply = client.Call(binding, 1, Bytes{5, 6});
  ASSERT_TRUE(async_reply.ok());
  ASSERT_TRUE(sync_reply.ok());
  EXPECT_EQ(*async_reply, *sync_reply);
}

TEST(AsyncClientTest, ResolveManyIssuesRemoteFindNsmConcurrently) {
  constexpr int kUnique = 8;
  // Large enough that the overlap signal dominates sanitizer slowdown: the
  // TSan build adds ~100 ms of instrumentation overhead to the batch, which
  // must stay well under the half-serial-cost bound below.
  constexpr int kDelayMs = 50;
  UdpServerHost host(ServeMode::kReactor, /*reactor_workers=*/8);
  RpcServer hns_server(ControlKind::kRaw, "hns-server");
  hns_server.RegisterProcedure(
      kHnsProgram, kHnsProcFindNsm, [kDelayMs](const Bytes& args) -> Result<Bytes> {
        HCS_ASSIGN_OR_RETURN(FindNsmRequest request, FindNsmRequest::Decode(args));
        std::this_thread::sleep_for(std::chrono::milliseconds(kDelayMs));
        FindNsmResponse response;
        response.nsm_name = "nsm-" + request.context;
        response.binding.service_name = response.nsm_name;
        response.binding.host = "server";
        response.binding.port = kNsmBasePort;
        response.binding.program = 1;
        return response.Encode();
      });
  // The session dials the well-known HNS port; this test runs as root in
  // the container, so the sub-1024 bind is available. Skip, not fail, when
  // another process owns it.
  Result<uint16_t> port = host.ServeConcurrent(&hns_server, kHnsServerPort);
  if (!port.ok()) {
    GTEST_SKIP() << "cannot bind HNS port " << kHnsServerPort << ": " << port.status();
  }

  UdpTransport transport;
  SessionOptions options;
  options.hns_location = HnsLocation::kRemote;
  options.hns_server_host = "localhost";
  HnsSession session(/*world=*/nullptr, "localclient", &transport, options);

  // 16 requests over 8 unique (context, class) pairs: duplicates share one
  // exchange, distinct pairs all go out before any is awaited.
  std::vector<HnsSession::ResolveRequest> requests;
  for (int i = 0; i < kUnique * 2; ++i) {
    HnsSession::ResolveRequest request;
    request.name.context = "ctx" + std::to_string(i % kUnique);
    request.name.individual = "host" + std::to_string(i);
    request.query_class = "HRPCBinding";
    requests.push_back(request);
  }

  Clock::time_point start = Clock::now();
  std::vector<Result<NsmHandle>> results = session.ResolveMany(requests);
  int64_t elapsed = ElapsedMs(start);

  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "request " << i << ": " << results[i].status();
    EXPECT_EQ(results[i]->nsm_name, "nsm-ctx" + std::to_string(i % kUnique));
  }
  // Sequential: kUnique * kDelayMs = 400 ms. Concurrent across 8 server
  // workers: ~1 delay. Well under half the serial cost proves the batch was
  // in flight together.
  EXPECT_LT(elapsed, kUnique * kDelayMs / 2)
      << "ResolveMany did not overlap its FindNSM exchanges";
  host.StopAll();
}

// Partial failure inside one batch: a FaultPlan lets the first few FindNSM
// exchanges through and then drops everything. The injector's phase clock is
// driven by a counting time function — one tick per decision — so which
// pairs resolve and which time out is a pure function of the plan, not of
// machine speed: per-name Statuses must map exactly, with no cross-talk
// between the names that resolved and the names that didn't.
TEST(AsyncClientTest, ResolveManyReportsPartialFailurePerName) {
  constexpr int kUnique = 8;
  constexpr int kHealthyCalls = 3;  // pairs 0..2 resolve; pairs 3..7 time out
  UdpServerHost host;
  RpcServer hns_server(ControlKind::kRaw, "hns-server");
  hns_server.RegisterProcedure(
      kHnsProgram, kHnsProcFindNsm, [](const Bytes& args) -> Result<Bytes> {
        HCS_ASSIGN_OR_RETURN(FindNsmRequest request, FindNsmRequest::Decode(args));
        FindNsmResponse response;
        response.nsm_name = "nsm-" + request.context;
        response.binding.service_name = response.nsm_name;
        response.binding.host = "server";
        response.binding.port = kNsmBasePort;
        response.binding.program = 1;
        return response.Encode();
      });
  Result<uint16_t> port = host.Serve(&hns_server, kHnsServerPort);
  if (!port.ok()) {
    GTEST_SKIP() << "cannot bind HNS port " << kHnsServerPort << ": " << port.status();
  }

  // The fault wrapper exposes no async channel, so each unique pair's
  // exchange runs inline in first-occurrence order — decision k belongs to
  // unique pair k. Every Decide reads the phase clock exactly once; ticking
  // it 100 "ms" per read puts decisions 0..2 in the healthy phase and every
  // later decision (first attempts and retries alike) in the terminal
  // drop-everything phase.
  FaultInjector injector(FaultConfig{/*seed=*/7, {}});
  std::atomic<int64_t> ticks{0};
  injector.SetTimeFn([&ticks] { return 100 * ticks.fetch_add(1); });
  FaultSpec drop_all;
  drop_all.drop = 1.0;
  injector.SetPlan(FaultPlan{
      "localhost",
      {FaultPhase{/*duration_ms=*/kHealthyCalls * 100 + 50, FaultSpec{}},
       FaultPhase{0, drop_all}}});

  UdpTransport transport(/*timeout_ms=*/500);
  FaultInjectingTransport faulty(&transport, &injector);
  SessionOptions options;
  options.hns_location = HnsLocation::kRemote;
  options.hns_server_host = "localhost";
  HnsSession session(/*world=*/nullptr, "localclient", &faulty, options);

  // 16 names over 8 unique (context, class) pairs, so every outcome — ok
  // and timeout — also has a memoized duplicate to check for cross-talk.
  std::vector<HnsSession::ResolveRequest> requests;
  for (int i = 0; i < kUnique * 2; ++i) {
    HnsSession::ResolveRequest request;
    request.name.context = "ctx" + std::to_string(i % kUnique);
    request.name.individual = "host" + std::to_string(i);
    request.query_class = "HRPCBinding";
    requests.push_back(request);
  }

  std::vector<Result<NsmHandle>> results =
      session.ResolveMany(requests, RequestContext::WithTimeout(1000));

  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < results.size(); ++i) {
    size_t pair = i % kUnique;
    if (pair < kHealthyCalls) {
      ASSERT_TRUE(results[i].ok())
          << "healthy-phase pair " << pair << " failed: " << results[i].status();
      EXPECT_EQ(results[i]->nsm_name, "nsm-ctx" + std::to_string(pair))
          << "request " << i << " mapped to the wrong pair's result";
    } else {
      ASSERT_FALSE(results[i].ok())
          << "drop-phase pair " << pair << " resolved anyway (request " << i << ")";
      EXPECT_EQ(results[i].status().code(), StatusCode::kTimeout)
          << "request " << i << ": " << results[i].status();
    }
    // Memoized duplicates of one pair must agree exactly — a timed-out
    // name must never borrow another name's resolution.
    if (i >= static_cast<size_t>(kUnique)) {
      EXPECT_EQ(results[i].ok(), results[pair].ok());
      if (results[i].ok()) {
        EXPECT_EQ(results[i]->nsm_name, results[pair]->nsm_name);
      }
    }
  }
  EXPECT_GT(injector.stats().drops, 0u) << "the drop phase never fired";
  host.StopAll();
}

// A delaying modified-BIND upstream served concurrently, for the meta-store
// prefetch wall-clock test.
class DelayedMetaBind {
 public:
  explicit DelayedMetaBind(int delay_ms)
      : host_(ServeMode::kReactor, /*reactor_workers=*/8),
        server_(ControlKind::kRaw, "delayed-meta-bind") {
    server_.RegisterProcedure(
        kBindProgram, kBindProcQuery, [this, delay_ms](const Bytes& args) -> Result<Bytes> {
          ++queries_;
          HCS_ASSIGN_OR_RETURN(BindQueryRequest request, BindQueryRequest::Decode(args));
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
          BindQueryResponse response;
          response.rcode = Rcode::kNoError;
          response.answers = UnspecRecordsFromValue(
              request.name, RecordBuilder().Str("ns", "UW-BIND").Build(), 300);
          return response.Encode();
        });
  }

  Result<uint16_t> Serve() { return host_.ServeConcurrent(&server_, 0); }
  int queries() const { return queries_.load(); }
  void Stop() { host_.StopAll(); }

 private:
  UdpServerHost host_;
  RpcServer server_;
  std::atomic<int> queries_{0};
};

TEST(AsyncClientTest, PrefetchRecordsFetchesAWaveConcurrently) {
  constexpr int kRecords = 6;
  constexpr int kDelayMs = 40;
  DelayedMetaBind upstream(kDelayMs);
  Result<uint16_t> port = upstream.Serve();
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient rpc(/*world=*/nullptr, "localclient", &transport);
  HnsCache cache(/*world=*/nullptr, CacheMode::kDemarshalled);
  MetaStore meta(&rpc, "localhost", "", &cache);
  meta.set_meta_port(*port);

  std::vector<std::string> names;
  std::vector<std::string> contexts;
  for (int i = 0; i < kRecords; ++i) {
    contexts.push_back("PrefetchCtx" + std::to_string(i));
    names.push_back(MetaStore::ContextRecordName(contexts.back()));
  }

  Clock::time_point start = Clock::now();
  meta.PrefetchRecords(names);
  int64_t elapsed = ElapsedMs(start);
  // Sequential: kRecords * kDelayMs = 240 ms; concurrent: ~1 delay.
  EXPECT_LT(elapsed, kRecords * kDelayMs / 2)
      << "prefetch fetched its wave sequentially";
  EXPECT_EQ(meta.remote_lookups(), static_cast<uint64_t>(kRecords));

  // Every follow-up read is a cache hit off the prefetched wave.
  for (const std::string& ctx : contexts) {
    Result<std::string> ns = meta.ContextToNameService(ctx);
    ASSERT_TRUE(ns.ok()) << ns.status();
    EXPECT_EQ(*ns, "UW-BIND");
  }
  EXPECT_EQ(meta.remote_lookups(), static_cast<uint64_t>(kRecords))
      << "post-prefetch reads went remote";
  EXPECT_EQ(upstream.queries(), kRecords);
  upstream.Stop();
}

// --- Completion-exactly-once under contention (DESIGN.md §15) ---------------

// Binds a UDP socket nobody ever reads: calls to it spend their full
// deadline budget and complete (kTimeout) on the engine's loop thread.
int BindBlackHole(uint16_t* port_out) {
  int fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t len = sizeof(addr);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close(fd);
    return -1;
  }
  *port_out = ntohs(addr.sin_port);
  return fd;
}

// 1k futures across four contention classes — plain success, tight deadline
// racing the reply, guaranteed timeout, and a final wave destroyed mid-
// flight with the engine — each counting its OnComplete firings. Every
// future must complete, and every callback must fire exactly once, no
// matter which of completion/timeout/engine-stop wins the race.
void OnCompleteFiresExactlyOnceUnderRaces(ServeMode mode) {
  UdpServerHost host(mode, /*reactor_workers=*/8);
  RpcServer server(ControlKind::kSunRpc, "stress-echo");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();
  uint16_t hole_port = 0;
  int hole_fd = BindBlackHole(&hole_port);
  ASSERT_GE(hole_fd, 0);

  constexpr int kFutures = 1000;
  std::vector<std::atomic<int>> fired(kFutures);
  std::vector<RpcFuture> futures(kFutures);
  UdpTransport transport;
  RpcClient client(nullptr, "localclient", &transport);
  HrpcBinding live = UdpBinding(*port, 7, ControlKind::kSunRpc);
  HrpcBinding hole = UdpBinding(hole_port, 7, ControlKind::kSunRpc);
  {
    AsyncClientEngine engine;
    client.set_async_engine(&engine);
    auto issue = [&](int i, const HrpcBinding& binding, const RequestContext& context) {
      futures[i] = client.CallAsync(binding, 1, Bytes{static_cast<uint8_t>(i & 0xff)}, context);
      futures[i].OnComplete([&fired, i](const Result<Bytes>&, const RpcCallInfo&) {
        fired[i].fetch_add(1, std::memory_order_relaxed);
      });
    };
    for (int i = 0; i < 250; ++i) {
      issue(i, live, RequestContext{});  // completes with the echo reply
    }
    for (int i = 250; i < 500; ++i) {
      // Deadline in the same band as the loopback RTT: the reply and the
      // attempt-timeout timer race for the one completion.
      issue(i, live, RequestContext::WithTimeout(1 + i % 3));
    }
    for (int i = 500; i < 750; ++i) {
      issue(i, hole, RequestContext::WithTimeout(20));  // guaranteed timeout
    }
    for (int i = 0; i < 750; ++i) {
      // hcs:ignore-status(outcome is class-dependent by design; the firing count is the assertion)
      (void)futures[i].Wait();
    }
    // The final wave is still in flight when the engine is destroyed: its
    // fail-all races any replies that beat the shutdown to the loop.
    for (int i = 750; i < kFutures; ++i) {
      issue(i, live, RequestContext{});
    }
  }
  for (int i = 0; i < kFutures; ++i) {
    ASSERT_TRUE(futures[i].ready()) << "future " << i << " never completed";
    EXPECT_EQ(fired[i].load(), 1)
        << "OnComplete fired " << fired[i].load() << " times for future " << i;
  }
  close(hole_fd);
  host.StopAll();
  client.set_async_engine(nullptr);
}

TEST(AsyncClientTest, OnCompleteFiresExactlyOnceUnderRacesThreadPerEndpoint) {
  OnCompleteFiresExactlyOnceUnderRaces(ServeMode::kThreadPerEndpoint);
}

TEST(AsyncClientTest, OnCompleteFiresExactlyOnceUnderRacesReactor) {
  OnCompleteFiresExactlyOnceUnderRaces(ServeMode::kReactor);
}

// --- Loop-affinity runtime enforcement (DESIGN.md §15) ----------------------
//
// The static half of the threading rules is tools/lint_loop.py; these death
// tests pin the runtime half: HCS_ASSERT_LOOP aborts on off-loop access to
// loop-owned state, and the Wait-on-loop-thread detector turns a silent
// self-deadlock into a diagnostic abort naming the future's birth site.

#if !HCS_LOOP_DEBUG_ENABLED

TEST(LoopAffinityDeathTest, DebugModeCompiledOut) {
  GTEST_SKIP() << "HCS_LOOP_DEBUG_ENABLED is 0 (NDEBUG without HCS_DEBUG_LOOP): "
                  "the loop-affinity aborts are compiled out of this build";
}

#else

// Waiting on a future from the engine's own loop thread (here: inside an
// OnComplete callback, which runs on the loop) would self-deadlock — the
// loop is the only thread that can complete the awaited future. The
// detector must abort instead, naming this file as the birth site.
void WaitOnLoopThread(ServeMode mode) {
  UdpServerHost host(mode, /*reactor_workers=*/4);
  RpcServer server(ControlKind::kSunRpc, "wait-on-loop");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient client(nullptr, "localclient", &transport);
  AsyncClientEngine engine;
  client.set_async_engine(&engine);
  // Prove the serving mode works before committing the violation.
  ASSERT_TRUE(client.CallAsync(UdpBinding(*port, 7, ControlKind::kSunRpc), 1, Bytes{1})
                  .Wait()
                  .ok());

  uint16_t hole_port = 0;
  int hole_fd = BindBlackHole(&hole_port);
  ASSERT_GE(hole_fd, 0);
  HrpcBinding hole = UdpBinding(hole_port, 7, ControlKind::kSunRpc);
  RpcFuture pending = client.CallAsync(hole, 1, Bytes{2}, RequestContext::WithTimeout(2000));
  RpcFuture doomed = client.CallAsync(hole, 1, Bytes{3}, RequestContext::WithTimeout(50));
  doomed.OnComplete([&pending](const Result<Bytes>&, const RpcCallInfo&) {
    // hcs:ignore-status(deliberate violation: the detector aborts inside this Wait)
    (void)pending.Wait();  // on the loop thread: the detector aborts here
  });
  // hcs:ignore-status(never returns — the child process aborts ~50 ms in)
  (void)pending.Wait();
  close(hole_fd);
}

// Touching a running reactor's loop-owned state (the timer wheel) from off
// the loop thread must abort, naming the violating entry point.
void TouchLoopOwnedStateOffLoop(ServeMode mode) {
  UdpServerHost host(mode, /*reactor_workers=*/4);
  RpcServer server(ControlKind::kSunRpc, "assert-loop");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  ASSERT_TRUE(host.Serve(&server, 0).ok());

  ReactorOptions options;
  options.workers = -1;  // client-only: the loop owns everything
  Reactor reactor(options);
  ASSERT_TRUE(reactor.Start().ok());
  // Wait until the loop thread has marked itself live: Start() returns as
  // soon as the thread is spawned, and HCS_ASSERT_LOOP deliberately passes
  // while the loop is not yet running (single-threaded setup is sanctioned).
  std::atomic<bool> loop_live{false};
  ASSERT_TRUE(reactor.Post([&loop_live] { loop_live.store(true); }));
  while (!loop_live.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // hcs:on-loop(deliberate violation: this death test proves HCS_ASSERT_LOOP aborts)
  (void)reactor.ScheduleAfter(1000, [] {});
  reactor.Stop();
}

TEST(LoopAffinityDeathTest, WaitOnLoopThreadAbortsWithBirthSiteThreadPerEndpoint) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(WaitOnLoopThread(ServeMode::kThreadPerEndpoint),
               "self-deadlocks.*async_client_test");
}

TEST(LoopAffinityDeathTest, WaitOnLoopThreadAbortsWithBirthSiteReactor) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(WaitOnLoopThread(ServeMode::kReactor), "self-deadlocks.*async_client_test");
}

TEST(LoopAffinityDeathTest, OffLoopTimerAccessAbortsThreadPerEndpoint) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(TouchLoopOwnedStateOffLoop(ServeMode::kThreadPerEndpoint),
               "HCS_ASSERT_LOOP: ScheduleAfter");
}

TEST(LoopAffinityDeathTest, OffLoopTimerAccessAbortsReactor) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(TouchLoopOwnedStateOffLoop(ServeMode::kReactor),
               "HCS_ASSERT_LOOP: ScheduleAfter");
}

#endif  // HCS_LOOP_DEBUG_ENABLED

}  // namespace
}  // namespace hcs
