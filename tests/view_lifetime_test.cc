// View-lifetime runtime enforcement (ctest label `concurrency`; the
// views-asan leg of tools/check.sh runs this under ASan in both serve
// modes): the poisoned debug arena and the generation-stamped BytesView
// from DESIGN.md §13. Death tests assert that a view which outlives its
// arena's Reset aborts with both sites (birth and reset) named; poison
// tests assert freed spans trap (ASan) or carry the canary scribble
// (plain debug builds); storm regressions prove no handler on either
// serve path retains a view past its frame.
//
// In release builds (HCS_VIEW_DEBUG_ENABLED == 0) every check here
// compiles out of the product code, so the suite reduces to one skip;
// bench_smoke holds the other side of that bargain (no debug cost in the
// measured binaries).

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/arena.h"
#include "src/common/bytes.h"
#include "src/rpc/control.h"
#include "src/rpc/mmsg.h"
#include "src/rpc/server.h"
#include "src/rpc/udp_transport.h"

namespace hcs {
namespace {

#if !HCS_VIEW_DEBUG_ENABLED

TEST(ViewLifetimeTest, DebugModeCompiledOut) {
  GTEST_SKIP() << "HCS_VIEW_DEBUG_ENABLED=0: release builds compile the "
                  "view-lifetime machinery out (bench_smoke asserts the "
                  "hot path pays nothing for it); run a sanitizer or "
                  "Debug build for the enforcement suite";
}

#else  // HCS_VIEW_DEBUG_ENABLED

// --- Arena poison discipline ------------------------------------------------

TEST(ViewLifetimeTest, GenerationBumpsOnEveryReset) {
  Arena arena(64);
  EXPECT_EQ(arena.generation(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.generation(), 1u);
  (void)arena.Allocate(32);
  arena.Reset();
  arena.Reset();
  EXPECT_EQ(arena.generation(), 3u);
}

TEST(ViewLifetimeTest, CanaryScribbleOnResetWithoutAsan) {
  if (DebugPoisonTraps()) {
    GTEST_SKIP() << "ASan build: freed spans trap instead of scribbling "
                    "(PoisonTrapsFreedSpanUnderAsan covers this build)";
  }
  Arena arena(64);
  uint8_t* p = arena.Allocate(16);
  std::memset(p, 0xAB, 16);
  arena.Reset();
  // The payload must be unreadable as itself: every freed byte now carries
  // the canary, so a stale reader sees a recognizable pattern, not data.
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(p[i], kArenaCanary) << "offset " << i << " kept its payload";
  }
}

TEST(ViewLifetimeTest, PoisonTrapsFreedSpanUnderAsan) {
  if (!DebugPoisonTraps()) {
    GTEST_SKIP() << "not an ASan build: freed spans scribble the canary "
                    "instead of trapping";
  }
  Arena arena(64);
  uint8_t* p = arena.Allocate(16);
  std::memset(p, 0xAB, 16);
  arena.Reset();
  EXPECT_DEATH({
    volatile uint8_t sink = p[0];
    (void)sink;
  }, "use-after-poison");
}

TEST(ViewLifetimeTest, UnallocatedTailStaysTrappedUnderAsan) {
  if (!DebugPoisonTraps()) {
    GTEST_SKIP() << "not an ASan build";
  }
  Arena arena(256);
  uint8_t* p = arena.Allocate(8);
  std::memset(p, 1, 8);  // the handed-out bytes are readable
  // One past the allocation is unhanded arena space: still poisoned.
  EXPECT_DEATH({
    volatile uint8_t sink = p[8];
    (void)sink;
  }, "use-after-poison");
}

// --- Generation-stamped views -----------------------------------------------

TEST(ViewLifetimeTest, StampedViewAbortsOnUseAfterReset) {
  Arena arena(128);
  ScopedArenaViewBinding binding(&arena);
  uint8_t* p = arena.Allocate(8);
  std::memset(p, 0x11, 8);
  BytesView view(p, 8);
  EXPECT_TRUE(view.debug_alive());
  EXPECT_EQ(view.data(), p);  // pre-reset access is fine
  arena.Reset();
  // hcs:owns-view(deliberate staleness: this test asserts the abort fires)
  EXPECT_FALSE(view.debug_alive());
  // The abort names both sides: where the view was born and where the
  // arena was Reset — both in this file.
  EXPECT_DEATH((void)view.data(),
               "use-after-reset: BytesView born at "
               ".*view_lifetime_test.cc:[0-9]+ .* accessed after "
               "Arena::Reset at .*view_lifetime_test.cc:[0-9]+");
}

TEST(ViewLifetimeTest, CopiedViewInheritsTheStamp) {
  Arena arena(128);
  ScopedArenaViewBinding binding(&arena);
  uint8_t* p = arena.Allocate(8);
  BytesView original(p, 8);
  BytesView copy = original;  // a copy is the same dangling pointer
  arena.Reset();
  // hcs:owns-view(deliberate staleness: asserts copies inherit the stamp)
  EXPECT_FALSE(copy.debug_alive());
  EXPECT_DEATH((void)copy.ToBytes(), "use-after-reset");
}

TEST(ViewLifetimeTest, SizeAndEmptyNeverAbort) {
  // size()/empty() read no arena memory and stay usable on a dead view —
  // drop/accounting paths may size a frame they will not touch.
  Arena arena(128);
  ScopedArenaViewBinding binding(&arena);
  BytesView view(arena.Allocate(8), 8);
  arena.Reset();
  // hcs:owns-view(deliberate staleness: size/empty must stay safe on a dead view)
  EXPECT_FALSE(view.debug_alive());
  EXPECT_EQ(view.size(), 8u);
  EXPECT_FALSE(view.empty());
}

TEST(ViewLifetimeTest, ViewsAreNotStampedWithoutABinding) {
  Arena arena(128);
  uint8_t* p = arena.Allocate(8);
  BytesView view(p, 8);  // no ambient binding installed
  arena.Reset();
  // Unstamped: the generation check cannot fire (the poison still traps a
  // dereference under ASan, which is the backstop for unbound paths).
  // hcs:owns-view(deliberate staleness: asserts unbound views are unstamped)
  EXPECT_TRUE(view.debug_alive());
}

TEST(ViewLifetimeTest, ViewsOutsideTheBoundArenaAreNotStamped) {
  Arena arena(128);
  ScopedArenaViewBinding binding(&arena);
  Bytes owned(16, 0x22);
  BytesView view(owned);  // backed by the vector, not the bound arena
  arena.Reset();
  // hcs:owns-view(backed by the local vector `owned`, not the reset arena)
  EXPECT_TRUE(view.debug_alive());
  EXPECT_EQ(view[0], 0x22);  // accessible after the unrelated Reset
}

TEST(ViewLifetimeTest, BindingsNestAndRestore) {
  Arena outer(128);
  Arena inner(128);
  uint8_t* p = outer.Allocate(8);
  ScopedArenaViewBinding outer_binding(&outer);
  {
    ScopedArenaViewBinding inner_binding(&inner);
    // While the inner binding is active, outer-arena memory is ambient-
    // foreign: views over it are not stamped (sim-path re-entry must not
    // cross-stamp its caller's arena).
    BytesView foreign(p, 8);
    outer.Reset();
    // hcs:owns-view(deliberate staleness: inner binding must not stamp outer memory)
    EXPECT_TRUE(foreign.debug_alive());
  }
  // The outer binding is restored: new views over outer memory stamp again.
  uint8_t* q = outer.Allocate(8);
  BytesView stamped(q, 8);
  outer.Reset();
  // hcs:owns-view(deliberate staleness: asserts the restored binding stamps)
  EXPECT_FALSE(stamped.debug_alive());
}

// --- The real decode path stamps through GetOpaqueView ----------------------

Bytes EncodeEchoCall(uint32_t xid, const Bytes& args) {
  RpcCall call;
  call.xid = xid;
  call.program = 7;
  call.version = 2;
  call.procedure = 1;
  call.args = args;
  return GetControlProtocol(ControlKind::kSunRpc).EncodeCall(call);
}

TEST(ViewLifetimeTest, DecodeCallViewArgsCarryTheArenaStamp) {
  Arena arena(1024);
  ScopedArenaViewBinding binding(&arena);
  Bytes frame = EncodeEchoCall(9, Bytes{0xde, 0xad, 0xbe, 0xef});
  uint8_t* p = arena.Allocate(frame.size());
  std::memcpy(p, frame.data(), frame.size());

  Result<RpcCallView> call =
      GetControlProtocol(ControlKind::kSunRpc).DecodeCallView(p, frame.size());
  ASSERT_TRUE(call.ok()) << call.status();
  EXPECT_EQ(call->args.size(), 4u);
  EXPECT_TRUE(call->args.debug_alive());
  EXPECT_EQ(call->args[0], 0xde);

  arena.Reset();
  EXPECT_FALSE(call->args.debug_alive());
  EXPECT_DEATH((void)call->args.ToBytes(), "use-after-reset");
}

// --- Partial-batch recycle poisoning ----------------------------------------

sockaddr_in Loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

int BindUdp(uint16_t* port_out) {
  int fd = socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = Loopback(0);
  EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port_out = ntohs(addr.sin_port);
  return fd;
}

TEST(ViewLifetimeTest, PartialBatchRecyclePoisonsUnfilledSpans) {
  uint16_t port = 0;
  int fd = BindUdp(&port);
  int sender = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(sender, 0);
  Bytes payload{0x01, 0x02, 0x03};
  sockaddr_in addr = Loopback(port);
  ASSERT_EQ(sendto(sender, payload.data(), payload.size(), 0,
                   reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            static_cast<ssize_t>(payload.size()));

  constexpr size_t kSlot = 64;
  UdpRecvBatch batch(4, kSlot);
  int n = batch.Recv(fd, /*wait_for_one=*/true);
  ASSERT_EQ(n, 1);
  uint8_t* slot0 = batch.frame(0).data;
  ASSERT_EQ(batch.frame(0).size, 3u);
  EXPECT_EQ(slot0[0], 0x01);  // the landed bytes are readable

  // The tail of the received slot past the datagram, and the whole of the
  // next (unreceived) slot, were re-trapped after the partial batch: a
  // decoder over-reading past frame.size hits poison, not stale bytes.
  uint8_t* tail = slot0 + payload.size();
  uint8_t* slot1 = slot0 + kSlot;
  if (DebugPoisonTraps()) {
    EXPECT_DEATH({
      volatile uint8_t sink = tail[0];
      (void)sink;
    }, "use-after-poison");
    EXPECT_DEATH({
      volatile uint8_t sink = slot1[0];
      (void)sink;
    }, "use-after-poison");
  } else {
    EXPECT_EQ(tail[0], kArenaCanary);
    EXPECT_EQ(tail[kSlot - payload.size() - 1], kArenaCanary);
    EXPECT_EQ(slot1[0], kArenaCanary);
    EXPECT_EQ(slot1[kSlot - 1], kArenaCanary);
  }
  close(sender);
  close(fd);
}

// --- Use-after-recycle across the serving runtimes --------------------------

// A server whose handler illegally retains the args view of request 1 and
// dereferences it while serving request 2 — after the batch's next Recv
// has Reset the arena. Run inside EXPECT_DEATH: the generation stamp must
// abort the process on the second request. Returns only if the runtime
// gate failed to fire (which the death test reports as the failure).
void ServeWithRetainingHandler(ServeMode mode) {
  UdpServerHost host(mode, /*reactor_workers=*/1, /*udp_batch=*/8);
  RpcServer server(ControlKind::kSunRpc, "retainer");
  struct Retained {
    // hcs:owns-view(deliberate violation: this death test asserts the
    // runtime gate catches exactly this retention)
    BytesView view;
    bool armed = false;
  };
  auto retained = std::make_shared<Retained>();
  server.RegisterProcedure(7, 1, [retained](BytesView args) -> Result<Bytes> {
    if (!retained->armed) {
      retained->armed = true;
      retained->view = args;  // the illegal escape: outlives the frame
      return args.ToBytes();
    }
    return retained->view.ToBytes();  // request 2: touches recycled arena
  });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  int fd = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  timeval tv{0, 500 * 1000};
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr = Loopback(*port);
  std::vector<uint8_t> buf(2048);
  // Request 1 arms the retention; every later request dereferences the
  // stale view. The reactor returns a batch to the pool only when its last
  // in-flight frame task drops it, which races with the next Recv acquiring
  // one — so a single follow-up request is not guaranteed to land in the
  // recycled batch. Pause between requests and keep sending until the
  // reuse happens and the generation stamp aborts the server (in practice
  // the second request; the loop bounds the slow-timing case).
  for (uint32_t xid = 1; xid <= 10; ++xid) {
    Bytes call = EncodeEchoCall(xid, Bytes{0x5a, 0x5a});
    ASSERT_EQ(sendto(fd, call.data(), call.size(), 0,
                     reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              static_cast<ssize_t>(call.size()));
    (void)recv(fd, buf.data(), buf.size(), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  close(fd);
  host.StopAll();
}

TEST(ViewLifetimeTest, RetainedViewAbortsAcrossRecycleThreadMode) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(ServeWithRetainingHandler(ServeMode::kThreadPerEndpoint),
               "use-after-reset");
}

TEST(ViewLifetimeTest, RetainedViewAbortsAcrossRecycleReactorMode) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(ServeWithRetainingHandler(ServeMode::kReactor),
               "use-after-reset");
}

// --- Storm regression: no handler retains a view past its reply -------------

int BurstEcho(uint16_t port, int count) {
  int fd = socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{2, 0};
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  for (int i = 0; i < count; ++i) {
    Bytes frame = EncodeEchoCall(static_cast<uint32_t>(i + 1), Bytes{0xaa});
    sockaddr_in addr = Loopback(port);
    EXPECT_EQ(sendto(fd, frame.data(), frame.size(), 0,
                     reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              static_cast<ssize_t>(frame.size()));
  }
  int replies = 0;
  std::vector<uint8_t> buf(2048);
  while (replies < count) {
    ssize_t n = recv(fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      break;  // timeout: report what arrived
    }
    ++replies;
  }
  close(fd);
  return replies;
}

TEST(ViewLifetimeTest, BatchedStormRetainsNoViewsEitherServeMode) {
  // Every frame's views die when its batch recycles; with the debug arena
  // live, any handler or dispatch path holding a view past its reply would
  // abort this storm. Full completion in both modes is the proof.
  for (ServeMode mode : {ServeMode::kThreadPerEndpoint, ServeMode::kReactor}) {
    SCOPED_TRACE(mode == ServeMode::kReactor ? "reactor" : "thread");
    UdpServerHost host(mode, /*reactor_workers=*/2, /*udp_batch=*/8);
    RpcServer server(ControlKind::kSunRpc, "storm-echo");
    server.RegisterProcedure(7, 1, [](BytesView args) -> Result<Bytes> {
      return args.ToBytes();
    });
    Result<uint16_t> port = host.Serve(&server, 0);
    ASSERT_TRUE(port.ok()) << port.status();
    EXPECT_EQ(BurstEcho(*port, 48), 48);
    host.StopAll();
  }
}

#endif  // HCS_VIEW_DEBUG_ENABLED

}  // namespace
}  // namespace hcs
