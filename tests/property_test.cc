// Property-based tests on the paper's invariants, as parameterized sweeps.

#include <gtest/gtest.h>

#include <set>

#include "src/common/rand.h"
#include "src/common/strings.h"
#include "src/hns/cache.h"
#include "src/hns/name.h"
#include "src/sim/cost_model.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

// --- No-conflict property (§2) ------------------------------------------------
// Because a context maps onto exactly one local name service and the
// local-name -> individual-name mapping is injective, combining previously
// separate systems can never create a conflict in the HNS name space: two
// distinct entities always have distinct HNS names.

class NoConflictTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NoConflictTest, MergingNameSpacesCannotCollide) {
  Rng rng(GetParam());

  // Two "previously separate systems" that reuse the *same* local names —
  // the worst case for a merge.
  std::vector<std::string> local_names;
  for (int i = 0; i < 200; ++i) {
    local_names.push_back(rng.Identifier(1 + rng.Uniform(10)));
  }

  std::set<std::string> hns_names;
  size_t entities = 0;
  for (const char* context : {"SystemA", "SystemB"}) {
    for (const std::string& local : local_names) {
      HnsName name;
      name.context = context;
      name.individual = local;  // identity mapping: trivially injective
      hns_names.insert(name.ToString());
      ++entities;
    }
  }
  // Duplicate local names within one system name the same entity; across
  // systems the context disambiguates, so |names| = systems x |unique local|.
  std::set<std::string> unique_local(local_names.begin(), local_names.end());
  EXPECT_EQ(hns_names.size(), 2 * unique_local.size());
  (void)entities;
}

TEST_P(NoConflictTest, NonInjectiveMappingsWouldCollide) {
  // The counterexample the paper's restriction forbids: a lossy mapping
  // (e.g. case folding of case-*sensitive* local names) breaks the
  // guarantee. This documents why the restriction is "a function producing
  // a unique result" per entity.
  Rng rng(GetParam() * 7919);
  std::set<std::string> collided;
  bool collision = false;
  for (int i = 0; i < 400; ++i) {
    std::string local = rng.Identifier(3);
    if (rng.Bernoulli(0.5)) {
      local[0] = static_cast<char>(local[0] - 'a' + 'A');
    }
    std::string lossy = AsciiToLower(local);  // NOT injective for such names
    collision |= !collided.insert("Ctx!" + lossy).second;
  }
  EXPECT_TRUE(collision);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoConflictTest, ::testing::Values(1, 17, 23, 99));

// --- Cache TTL property ----------------------------------------------------------

class CacheTtlTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CacheTtlTest, EntryLivesExactlyUntilTtl) {
  World world;
  HnsCache cache(&world, CacheMode::kDemarshalled);
  uint32_t ttl = GetParam();
  cache.Put("k", WireValue::OfUint32(1), ttl);

  // Just before expiry (leaving room for the probe's own simulated cost):
  // hit.
  world.clock().AdvanceTo(MsToSim(static_cast<double>(ttl) * 1000.0 - 2.0));
  EXPECT_TRUE(cache.Get("k").ok()) << "ttl=" << ttl;
  // At expiry: miss.
  world.clock().AdvanceTo(MsToSim(static_cast<double>(ttl) * 1000.0) + 1);
  EXPECT_FALSE(cache.Get("k").ok()) << "ttl=" << ttl;
}

INSTANTIATE_TEST_SUITE_P(Ttls, CacheTtlTest, ::testing::Values(1, 60, 300, 3600, 86400));

// --- Equation (1) monotonicity ------------------------------------------------------
// q* = C(remote) / (C(miss) - C(hit)). The threshold must fall as misses get
// more expensive and rise as the remote call gets more expensive; the HNS
// (many remote calls saved per hit) must always need a smaller q than an NSM
// (one call saved per hit).

struct Eq1Params {
  double remote_call;
  double hit;
  double miss;
};

class Equation1Test : public ::testing::TestWithParam<Eq1Params> {};

TEST_P(Equation1Test, ThresholdBehavesMonotonically) {
  const Eq1Params& p = GetParam();
  auto q = [](double remote, double miss, double hit) { return remote / (miss - hit); };

  double base = q(p.remote_call, p.miss, p.hit);
  EXPECT_GT(base, 0.0);
  EXPECT_LT(q(p.remote_call, p.miss * 2, p.hit), base)
      << "costlier misses favour the remote cache";
  EXPECT_GT(q(p.remote_call * 2, p.miss, p.hit), base)
      << "costlier remote calls favour local linking";
  EXPECT_GT(q(p.remote_call, p.hit + (p.miss - p.hit) / 2, p.hit), base)
      << "smaller miss-hit spread raises the bar";
}

INSTANTIATE_TEST_SUITE_P(CostPoints, Equation1Test,
                         ::testing::Values(Eq1Params{33, 261, 547}, Eq1Params{33, 147, 225},
                                           Eq1Params{50, 80, 400}, Eq1Params{10, 5, 50}));

// --- Cache-mode equivalence over the full system --------------------------------------
// Whatever the cache mode, queries return identical results; only time
// differs. (Sweeps the whole testbed per mode.)

class CacheModeTest : public ::testing::TestWithParam<CacheMode> {};

TEST_P(CacheModeTest, ResultsAreModeIndependent) {
  TestbedOptions options;
  options.hns_cache_mode = GetParam();
  options.nsm_cache_mode = GetParam();
  Testbed bed(options);
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);

  WireValue no_args = WireValue::OfRecord({});
  HnsName name = HnsName::Parse("BIND!fiji.cs.washington.edu").value();
  Result<WireValue> first = client.session->Query(name, kQueryClassHostAddress, no_args);
  ASSERT_TRUE(first.ok()) << first.status();
  Result<WireValue> second = client.session->Query(name, kQueryClassHostAddress, no_args);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(first->Uint32Field("address").value(),
            bed.world().network().GetHost(kSunServerHost).value().address);
}

TEST_P(CacheModeTest, WarmLatencyOrdering) {
  TestbedOptions options;
  options.hns_cache_mode = GetParam();
  options.nsm_cache_mode = GetParam();
  Testbed bed(options);
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  WireValue no_args = WireValue::OfRecord({});
  HnsName name = HnsName::Parse("BIND!fiji.cs.washington.edu").value();
  (void)client.session->Query(name, kQueryClassHostAddress, no_args);  // hcs:ignore-status(warm-up and timing probes; only clock deltas are asserted)

  double t0 = bed.world().clock().NowMs();
  (void)client.session->Query(name, kQueryClassHostAddress, no_args);  // hcs:ignore-status(warm-up and timing probes; only clock deltas are asserted)
  double warm = bed.world().clock().NowMs() - t0;

  switch (GetParam()) {
    case CacheMode::kNone:
      EXPECT_GT(warm, 100.0) << "no cache: every query pays the full remote path";
      break;
    case CacheMode::kMarshalled:
      EXPECT_GT(warm, 20.0);
      EXPECT_LT(warm, 150.0);
      break;
    case CacheMode::kDemarshalled:
      EXPECT_LT(warm, 20.0) << "demarshalled cache: hits are nearly free";
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CacheModeTest,
                         ::testing::Values(CacheMode::kNone, CacheMode::kMarshalled,
                                           CacheMode::kDemarshalled),
                         [](const auto& param_info) { return CacheModeName(param_info.param); });

// --- Cost-model sanity sweeps ------------------------------------------------------------

TEST(CostModelProperty, CompositionInequalitiesHold) {
  CostModel costs;
  // Stub marshalling dominates hand-coded at every record count.
  for (int records = 1; records <= 32; records *= 2) {
    EXPECT_GT(costs.StubDemarshalMs(records), costs.HandMarshalMs(records));
    EXPECT_GT(costs.StubMarshalMs(records), costs.HandMarshalMs(records));
  }
  // Same-host exchanges are cheaper at every payload size.
  for (size_t bytes = 0; bytes <= 1 << 16; bytes = bytes * 2 + 64) {
    EXPECT_LT(costs.NetRttMs(true, bytes, bytes), costs.NetRttMs(false, bytes, bytes));
  }
  // Authenticated disk-backed Clearinghouse access must dwarf a BIND lookup.
  EXPECT_GT(costs.ch_auth_ms + costs.ch_disk_ms, 10 * costs.bind_lookup_cpu_ms);
}

}  // namespace
}  // namespace hcs
