// Unit tests for src/nsm: the concrete NSMs and the host-table system type.
// The central property: NSMs for one query class are interchangeable — the
// caller cannot tell which name service answered.

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/nsm/bind_nsms.h"
#include "src/nsm/ch_nsms.h"
#include "src/nsm/host_table.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

class NsmTest : public ::testing::Test {
 protected:
  NsmTest() : bed_(), nsms_(bed_.MakeLinkedNsms(kClientHost)) {}

  Nsm* Find(const std::string& name) {
    for (auto& nsm : nsms_) {
      if (EqualsIgnoreCase(nsm->info().nsm_name, name)) {
        return nsm.get();
      }
    }
    return nullptr;
  }

  static HnsName Name(const std::string& context, const std::string& individual) {
    HnsName n;
    n.context = context;
    n.individual = individual;
    return n;
  }

  Testbed bed_;
  std::vector<std::shared_ptr<Nsm>> nsms_;
  WireValue no_args_ = WireValue::OfRecord({});
};

// --- HostAddress query class ---------------------------------------------------

TEST_F(NsmTest, HostAddressNsmsShareTheResultFormat) {
  Result<WireValue> bind_result =
      Find(kNsmHostAddrBind)->Query(Name(kContextBind, kSunServerHost), no_args_);
  ASSERT_TRUE(bind_result.ok()) << bind_result.status();
  Result<WireValue> ch_result =
      Find(kNsmHostAddrCh)->Query(Name(kContextCh, kXeroxServerHost), no_args_);
  ASSERT_TRUE(ch_result.ok()) << ch_result.status();

  // Identical interfaces: both results expose the same fields.
  EXPECT_TRUE(bind_result->Uint32Field("address").ok());
  EXPECT_TRUE(ch_result->Uint32Field("address").ok());
  EXPECT_TRUE(bind_result->StringField("host").ok());
  EXPECT_TRUE(ch_result->StringField("host").ok());
}

TEST_F(NsmTest, HostAddressUnknownNames) {
  EXPECT_EQ(Find(kNsmHostAddrBind)
                ->Query(Name(kContextBind, "ghost.cs.washington.edu"), no_args_)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Find(kNsmHostAddrCh)
                ->Query(Name(kContextCh, "Ghost:CSL:Xerox"), no_args_)
                .status()
                .code(),
            StatusCode::kNotFound);
  // A malformed Clearinghouse individual name is rejected without a remote
  // call.
  EXPECT_EQ(Find(kNsmHostAddrCh)
                ->Query(Name(kContextCh, "not-a-ch-name"), no_args_)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(NsmTest, NsmCacheAvoidsRemoteCalls) {
  Nsm* nsm = Find(kNsmHostAddrBind);
  ASSERT_TRUE(nsm->Query(Name(kContextBind, kSunServerHost), no_args_).ok());
  bed_.world().stats().Clear();
  ASSERT_TRUE(nsm->Query(Name(kContextBind, kSunServerHost), no_args_).ok());
  EXPECT_EQ(bed_.world().stats().total_messages, 0u);

  // The cache can be flushed through the generic NSM interface.
  ASSERT_NE(nsm->cache(), nullptr);
  nsm->cache()->Clear();
  ASSERT_TRUE(nsm->Query(Name(kContextBind, kSunServerHost), no_args_).ok());
  EXPECT_GT(bed_.world().stats().total_messages, 0u);
}

// --- HRPCBinding query class -------------------------------------------------------

TEST_F(NsmTest, BindingNsmsRunTheNativeBindingProtocols) {
  WireValue sun_args = RecordBuilder().Str("service", kDesiredService).Build();
  Result<WireValue> sun_result =
      Find(kNsmBindingBind)->Query(Name(kContextBindBinding, kSunServerHost), sun_args);
  ASSERT_TRUE(sun_result.ok()) << sun_result.status();
  HrpcBinding sun_binding = HrpcBinding::FromWire(*sun_result).value();
  EXPECT_EQ(sun_binding.port, kDesiredServicePort) << "port came from the portmapper";
  EXPECT_EQ(sun_binding.bind_protocol, BindProtocol::kSunPortmap);

  WireValue courier_args = RecordBuilder().Str("service", kPrintService).Build();
  Result<WireValue> ch_result =
      Find(kNsmBindingCh)->Query(Name(kContextChBinding, kXeroxServerHost), courier_args);
  ASSERT_TRUE(ch_result.ok()) << ch_result.status();
  HrpcBinding ch_binding = HrpcBinding::FromWire(*ch_result).value();
  EXPECT_EQ(ch_binding.port, kPrintServicePort);
  EXPECT_EQ(ch_binding.bind_protocol, BindProtocol::kCourierCh);
  EXPECT_EQ(ch_binding.data_rep, DataRep::kCourier);
}

TEST_F(NsmTest, BindingNsmRequiresServiceArgument) {
  EXPECT_EQ(Find(kNsmBindingBind)
                ->Query(Name(kContextBindBinding, kSunServerHost), no_args_)
                .status()
                .code(),
            StatusCode::kNotFound);  // record has no "service" field
}

TEST_F(NsmTest, BindingNsmUnknownServiceOrHost) {
  WireValue args = RecordBuilder().Str("service", "NoSuchService").Build();
  EXPECT_EQ(Find(kNsmBindingBind)
                ->Query(Name(kContextBindBinding, kSunServerHost), args)
                .status()
                .code(),
            StatusCode::kNotFound);
  WireValue ok_args = RecordBuilder().Str("service", kDesiredService).Build();
  EXPECT_EQ(Find(kNsmBindingBind)
                ->Query(Name(kContextBindBinding, "ghost.cs.washington.edu"), ok_args)
                .status()
                .code(),
            StatusCode::kNotFound);
}

// --- MailboxInfo query class ---------------------------------------------------------

TEST_F(NsmTest, MailboxNsmsShareTheResultFormat) {
  Result<WireValue> bind_result =
      Find(kNsmMailboxBind)->Query(Name(kContextBindMail, "cs.washington.edu"), no_args_);
  ASSERT_TRUE(bind_result.ok()) << bind_result.status();
  EXPECT_EQ(bind_result->StringField("mail_host").value(), "june.cs.washington.edu")
      << "lowest-preference MX relay wins";

  Result<WireValue> ch_result =
      Find(kNsmMailboxCh)->Query(Name(kContextChMail, "Purcell:CSL:Xerox"), no_args_);
  ASSERT_TRUE(ch_result.ok()) << ch_result.status();
  EXPECT_TRUE(ch_result->StringField("mail_host").ok());
  EXPECT_TRUE(ch_result->Uint32Field("preference").ok());
}

TEST_F(NsmTest, MailboxNsmRejectsMalformedMxRecords) {
  Zone* zone = bed_.public_bind()->FindZone("cs.washington.edu");
  ResourceRecord bad;
  bad.name = "broken.cs.washington.edu";
  bad.type = RrType::kMx;
  bad.rdata = BytesFromString("not-a-valid-mx");
  ASSERT_TRUE(zone->Add(bad).ok());
  EXPECT_EQ(Find(kNsmMailboxBind)
                ->Query(Name(kContextBindMail, "broken.cs.washington.edu"), no_args_)
                .status()
                .code(),
            StatusCode::kProtocolError);
}

// Regression: a two-field MX whose preference is non-numeric or wider than
// u32 used to reach std::stoul and throw (a remote crash — the rdata text
// arrives off the wire). Both must come back as clean protocol errors.
TEST_F(NsmTest, MailboxNsmSurvivesHostileMxPreference) {
  Zone* zone = bed_.public_bind()->FindZone("cs.washington.edu");
  const char* hostile[] = {"evil mailhost", "99999999999999999999 mailhost",
                           "-1 mailhost", " mailhost"};
  int i = 0;
  for (const char* rdata : hostile) {
    ResourceRecord bad;
    bad.name = StrFormat("hostile%d.cs.washington.edu", i++);
    bad.type = RrType::kMx;
    bad.rdata = BytesFromString(rdata);
    ASSERT_TRUE(zone->Add(bad).ok());
    EXPECT_EQ(Find(kNsmMailboxBind)
                  ->Query(Name(kContextBindMail, bad.name), no_args_)
                  .status()
                  .code(),
              StatusCode::kProtocolError)
        << "rdata: " << rdata;
  }
}

// --- Host-table system type ------------------------------------------------------------

TEST(HostTableTest, ServerStoresAndServes) {
  World world;
  ASSERT_TRUE(world.network().AddHost("tek", MachineType::kTektronix4400,
                                      OsType::kUniflex)
                  .ok());
  ASSERT_TRUE(world.network().AddHost("client", MachineType::kSun, OsType::kUnix).ok());
  HostTableServer* table = HostTableServer::InstallOn(&world, "tek").value();
  table->Put("a.local", 1);
  EXPECT_EQ(table->size(), 1u);

  SimNetTransport transport(&world);
  RpcClient client(&world, "client", &transport);
  ASSERT_TRUE(HostTablePut(&client, "tek", "b.local", 2).ok());
  EXPECT_EQ(table->size(), 2u);

  NsmInfo info;
  info.nsm_name = "HostAddrNSM-Tek";
  info.query_class = kQueryClassHostAddress;
  info.ns_name = "Tek";
  HostTableHostAddressNsm nsm(&world, "client", &transport, info, "tek");
  HnsName name;
  name.context = "Uniflex";
  name.individual = "b.local";
  Result<WireValue> result = nsm.Query(name, WireValue::OfRecord({}));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->Uint32Field("address").value(), 2u);

  name.individual = "absent.local";
  EXPECT_EQ(nsm.Query(name, WireValue::OfRecord({})).status().code(), StatusCode::kNotFound);
}

// --- Interchangeability through a session -------------------------------------------------

TEST_F(NsmTest, SessionCannotTellWhichServiceAnswered) {
  ClientSetup client = bed_.MakeClient(Arrangement::kAllLinked);
  for (const char* spec : {"BIND!fiji.cs.washington.edu", "CH!Dorado:CSL:Xerox"}) {
    SCOPED_TRACE(spec);
    HnsName name = HnsName::Parse(spec).value();
    Result<WireValue> result =
        client.session->Query(name, kQueryClassHostAddress, no_args_);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->Uint32Field("address").ok());
  }
}

}  // namespace
}  // namespace hcs
