// Unit + property tests for src/wire: buffers, XDR, Courier, WireValue.

#include <gtest/gtest.h>

#include "src/common/rand.h"
#include "src/wire/buffer.h"
#include "src/wire/courier.h"
#include "src/wire/marshal.h"
#include "src/wire/value.h"
#include "src/wire/xdr.h"

namespace hcs {
namespace {

// --- Buffer ------------------------------------------------------------------

TEST(BufferTest, IntegerRoundTripBigEndian) {
  BufferWriter w;
  w.PutU8(0x12);
  w.PutU16(0x3456);
  w.PutU32(0x789abcde);
  w.PutU64(0x0123456789abcdefULL);
  Bytes bytes = w.Take();
  EXPECT_EQ(bytes[1], 0x34);  // big-endian high byte first
  BufferReader r(bytes);
  EXPECT_EQ(r.GetU8().value(), 0x12);
  EXPECT_EQ(r.GetU16().value(), 0x3456);
  EXPECT_EQ(r.GetU32().value(), 0x789abcdeu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, UnderrunIsProtocolErrorNotUb) {
  Bytes two{1, 2};
  BufferReader r(two);
  EXPECT_TRUE(r.GetU16().ok());
  EXPECT_EQ(r.GetU16().status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(r.GetU8().status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(r.Skip(1).code(), StatusCode::kProtocolError);
}

// Regression: Need() used to test `pos_ + n > size_`, which wraps for n near
// SIZE_MAX once the cursor has advanced — the request passed the bound check
// and the subsequent copy read out of bounds.
TEST(BufferTest, HugeLengthCannotWrapTheBoundCheck) {
  Bytes four{1, 2, 3, 4};
  BufferReader r(four);
  EXPECT_TRUE(r.GetU8().ok());  // pos_ = 1, so pos_ + SIZE_MAX wraps to 0
  EXPECT_EQ(r.GetBytes(SIZE_MAX).status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(r.Skip(SIZE_MAX - 2).code(), StatusCode::kProtocolError);
  EXPECT_EQ(r.GetBytes(3).value(), (Bytes{2, 3, 4}));  // reader still usable
}

TEST(BufferTest, GetBytesAndSkip) {
  BufferWriter w;
  w.PutBytes(Bytes{9, 8, 7, 6});
  w.PutZeros(2);
  Bytes bytes = w.bytes();
  BufferReader r(bytes);
  EXPECT_EQ(r.GetBytes(4).value(), (Bytes{9, 8, 7, 6}));
  EXPECT_TRUE(r.Skip(2).ok());
  EXPECT_TRUE(r.AtEnd());
}

// --- XDR -----------------------------------------------------------------------

TEST(XdrTest, StringsArePaddedToFourBytes) {
  XdrEncoder enc;
  enc.PutString("abcde");  // 5 bytes -> 4 len + 5 data + 3 pad
  EXPECT_EQ(enc.size(), 12u);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetString().value(), "abcde");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, BoolRejectsOutOfRange) {
  XdrEncoder enc;
  enc.PutUint32(2);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetBool().status().code(), StatusCode::kProtocolError);
}

TEST(XdrTest, OpaqueRoundTrip) {
  Bytes payload{0, 1, 2, 3, 4, 5, 6};
  XdrEncoder enc;
  enc.PutOpaque(payload);
  enc.PutFixedOpaque(payload);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetOpaque().value(), payload);
  EXPECT_EQ(dec.GetFixedOpaque(payload.size()).value(), payload);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(XdrTest, PaddingHelper) {
  EXPECT_EQ(XdrPadding(0), 0u);
  EXPECT_EQ(XdrPadding(1), 3u);
  EXPECT_EQ(XdrPadding(4), 0u);
  EXPECT_EQ(XdrPadding(5), 3u);
}

TEST(XdrTest, RandomizedScalarRoundTrip) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    uint32_t u32 = static_cast<uint32_t>(rng.Next());
    int32_t i32 = static_cast<int32_t>(rng.Next());
    uint64_t u64 = rng.Next();
    std::string s = rng.Identifier(rng.Uniform(40));
    XdrEncoder enc;
    enc.PutUint32(u32);
    enc.PutInt32(i32);
    enc.PutUint64(u64);
    enc.PutString(s);
    XdrDecoder dec(enc.bytes());
    EXPECT_EQ(dec.GetUint32().value(), u32);
    EXPECT_EQ(dec.GetInt32().value(), i32);
    EXPECT_EQ(dec.GetUint64().value(), u64);
    EXPECT_EQ(dec.GetString().value(), s);
    EXPECT_TRUE(dec.AtEnd());
  }
}

// --- Courier ---------------------------------------------------------------------

TEST(CourierTest, StringsArePaddedToWords) {
  CourierEncoder enc;
  enc.PutString("abc");  // 2 len + 3 data + 1 pad
  EXPECT_EQ(enc.size(), 6u);
  CourierDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetString().value(), "abc");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CourierTest, ScalarsRoundTrip) {
  CourierEncoder enc;
  enc.PutCardinal(0xbeef);
  enc.PutLongCardinal(0xdeadbeef);
  enc.PutBoolean(true);
  enc.PutSequence(Bytes{1, 2, 3});
  CourierDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetCardinal().value(), 0xbeef);
  EXPECT_EQ(dec.GetLongCardinal().value(), 0xdeadbeefu);
  EXPECT_TRUE(dec.GetBoolean().value());
  EXPECT_EQ(dec.GetSequence().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CourierTest, BooleanRejectsOutOfRange) {
  CourierEncoder enc;
  enc.PutCardinal(7);
  CourierDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetBoolean().status().code(), StatusCode::kProtocolError);
}

// --- WireValue -----------------------------------------------------------------

WireValue DeepValue() {
  return RecordBuilder()
      .Str("host", "fiji.cs.washington.edu")
      .U32("port", 2049)
      .U64("big", 0x1122334455667788ULL)
      .Blob("raw", Bytes{1, 2, 3})
      .Value("list", WireValue::OfList({WireValue::OfUint32(1), WireValue::OfString("x"),
                                        WireValue::Null()}))
      .Value("nested", RecordBuilder().Str("inner", "v").Build())
      .Build();
}

TEST(WireValueTest, RoundTripAllKinds) {
  WireValue v = DeepValue();
  Result<WireValue> decoded = WireValue::Decode(v.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, v);
}

TEST(WireValueTest, FieldAccessors) {
  WireValue v = DeepValue();
  EXPECT_EQ(v.StringField("host").value(), "fiji.cs.washington.edu");
  EXPECT_EQ(v.Uint32Field("port").value(), 2049u);
  EXPECT_EQ(v.Field("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.Field("nested").value().StringField("inner").value(), "v");
  // Type mismatch is a protocol error, not a crash.
  EXPECT_EQ(v.Uint32Field("host").status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(WireValue::OfUint32(1).Field("x").status().code(), StatusCode::kProtocolError);
}

TEST(WireValueTest, LeafCountCountsLeaves) {
  EXPECT_EQ(WireValue::OfUint32(1).LeafCount(), 1u);
  // host, port, big, raw, 3 list items, nested.inner = 8 leaves
  EXPECT_EQ(DeepValue().LeafCount(), 8u);
}

TEST(WireValueTest, TrailingBytesRejected) {
  Bytes encoded = WireValue::OfUint32(5).Encode();
  encoded.push_back(0);
  EXPECT_EQ(WireValue::Decode(encoded).status().code(), StatusCode::kProtocolError);
}

TEST(WireValueTest, UnknownTagRejected) {
  XdrEncoder enc;
  enc.PutUint32(99);
  EXPECT_EQ(WireValue::Decode(enc.bytes()).status().code(), StatusCode::kProtocolError);
}

TEST(WireValueTest, DepthBombRejected) {
  // 40 nested single-item lists exceed the decoder's depth guard.
  XdrEncoder enc;
  for (int i = 0; i < 40; ++i) {
    enc.PutUint32(static_cast<uint32_t>(WireValue::Kind::kList));
    enc.PutUint32(1);
  }
  enc.PutUint32(static_cast<uint32_t>(WireValue::Kind::kNull));
  EXPECT_EQ(WireValue::Decode(enc.bytes()).status().code(), StatusCode::kProtocolError);
}

TEST(WireValueTest, HugeContainerRejected) {
  XdrEncoder enc;
  enc.PutUint32(static_cast<uint32_t>(WireValue::Kind::kList));
  enc.PutUint32(0xffffffff);
  EXPECT_EQ(WireValue::Decode(enc.bytes()).status().code(), StatusCode::kProtocolError);
}

TEST(WireValueTest, ToStringIsReadable) {
  WireValue v = RecordBuilder().Str("host", "fiji").U32("port", 53).Build();
  EXPECT_EQ(v.ToString(), "{host: \"fiji\", port: 53}");
}

// Randomized structural round-trip (property test).
WireValue RandomValue(Rng* rng, int depth) {
  uint64_t kind = rng->Uniform(depth > 2 ? 5 : 7);
  switch (kind) {
    case 0:
      return WireValue::Null();
    case 1:
      return WireValue::OfUint32(static_cast<uint32_t>(rng->Next()));
    case 2:
      return WireValue::OfUint64(rng->Next());
    case 3:
      return WireValue::OfString(rng->Identifier(rng->Uniform(24)));
    case 4: {
      Bytes blob(rng->Uniform(48), 0);
      for (uint8_t& b : blob) {
        b = static_cast<uint8_t>(rng->Next());
      }
      return WireValue::OfBlob(std::move(blob));
    }
    case 5: {
      std::vector<WireValue> items;
      for (uint64_t i = 0, n = rng->Uniform(4); i < n; ++i) {
        items.push_back(RandomValue(rng, depth + 1));
      }
      return WireValue::OfList(std::move(items));
    }
    default: {
      std::vector<WireField> fields;
      for (uint64_t i = 0, n = rng->Uniform(4); i < n; ++i) {
        fields.emplace_back(rng->Identifier(6), RandomValue(rng, depth + 1));
      }
      return WireValue::OfRecord(std::move(fields));
    }
  }
}

class WireValueRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireValueRoundTripTest, EncodeDecodeIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    WireValue v = RandomValue(&rng, 0);
    Result<WireValue> decoded = WireValue::Decode(v.Encode());
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireValueRoundTripTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Marshal units -----------------------------------------------------------

TEST(MarshalUnitsTest, BytesToRecordEquivalents) {
  EXPECT_EQ(MarshalUnitsForBytes(0), 1);
  EXPECT_EQ(MarshalUnitsForBytes(1), 1);
  EXPECT_EQ(MarshalUnitsForBytes(128), 1);
  EXPECT_EQ(MarshalUnitsForBytes(129), 2);
  EXPECT_EQ(MarshalUnitsForBytes(1024), 8);
}

TEST(MarshalUnitsTest, ChargingAdvancesClockByEngine) {
  World world;
  double stub = world.costs().StubDemarshalMs(3);
  double hand = world.costs().HandMarshalMs(3);
  double t0 = world.clock().NowMs();
  ChargeDemarshal(&world, MarshalEngine::kStubGenerated, 3);
  EXPECT_NEAR(world.clock().NowMs() - t0, stub, 1e-9);
  t0 = world.clock().NowMs();
  ChargeDemarshal(&world, MarshalEngine::kHandCoded, 3);
  EXPECT_NEAR(world.clock().NowMs() - t0, hand, 1e-9);
  EXPECT_GT(stub, hand * 5) << "stub-generated marshalling should dominate hand-coded";
}

}  // namespace
}  // namespace hcs
