// Deterministic truncation/corruption sweep over every Encode/Decode pair.
//
// fuzz_test.cc samples the mutation space with a seeded RNG; this sweep is
// exhaustive where exhaustiveness is affordable: each message type is encoded
// from a representative valid value, then re-decoded at *every* truncation
// length and with single-byte corruptions at *every* offset. The contract for
// each attempt:
//
//   * the decoder must return (no crash, no hang, no sanitizer finding —
//     check.sh runs this binary under ASan/UBSan);
//   * a failed decode must be a clean non-OK Status;
//   * a decode that still succeeds (tolerant readings exist: a flipped bit
//     inside a string payload is just a different string) must not be
//     OK-with-garbage: re-encoding the parsed value must reach a fixed point
//     (encode(decode(x)) decodes again and re-encodes to the same bytes).
//
// tools/lint_wire.py cross-checks that every pair it discovers is named in
// this file, so a new message type cannot ship without sweep coverage.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <cstring>

#include "src/bindns/protocol.h"
#include "src/bindns/record.h"
#include "src/ch/name.h"
#include "src/ch/protocol.h"
#include "src/common/arena.h"
#include "src/hns/name.h"
#include "src/hns/wire_protocol.h"
#include "src/rpc/binding.h"
#include "src/rpc/context.h"
#include "src/rpc/control.h"
#include "src/wire/courier.h"
#include "src/wire/value.h"
#include "src/wire/xdr.h"
#include "src/workload/trace.h"

namespace hcs {
namespace {

// Decodes `data` as one message type and, on success, re-encodes the parsed
// value. The sweep never looks inside the value; stability under a second
// decode/encode round is the garbage detector.
using Roundtrip = std::function<Result<Bytes>(const Bytes&)>;

struct SweepTotals {
  size_t types = 0;
  size_t attempts = 0;
  size_t rejected = 0;   // clean non-OK Status
  size_t tolerated = 0;  // decoded OK and re-encoded to a fixed point
};

SweepTotals& Totals() {
  static SweepTotals totals;
  return totals;
}

void CheckAttempt(const std::string& label, const std::string& what,
                  const Bytes& input, const Roundtrip& roundtrip) {
  ++Totals().attempts;
  Result<Bytes> first = roundtrip(input);
  if (!first.ok()) {
    ++Totals().rejected;
    return;  // clean rejection is the expected outcome
  }
  ++Totals().tolerated;
  // Tolerant parse: must be stable, not garbage. One normalization step is
  // allowed (e.g. a corrupted bool byte reads as true and re-encodes as 1);
  // after that the bytes must be a fixed point.
  Result<Bytes> second = roundtrip(*first);
  ASSERT_TRUE(second.ok())
      << label << ": " << what << " decoded OK but its re-encoding ("
      << first->size() << " bytes) does not decode";
  EXPECT_EQ(*first, *second)
      << label << ": " << what
      << " decoded OK but re-encoding is not a fixed point (garbage parse)";
}

void Sweep(const std::string& label, const Bytes& good,
           const Roundtrip& roundtrip) {
  ++Totals().types;
  // The valid encoding itself must round-trip byte-identically.
  Result<Bytes> reencoded = roundtrip(good);
  ASSERT_TRUE(reencoded.ok())
      << label << ": valid encoding does not decode: "
      << reencoded.status().ToString();
  ASSERT_EQ(good, *reencoded)
      << label << ": valid encoding does not re-encode byte-identically";

  // Every truncation length, including the empty frame.
  for (size_t len = 0; len < good.size(); ++len) {
    Bytes truncated(good.begin(), good.begin() + static_cast<long>(len));
    CheckAttempt(label, "truncation to " + std::to_string(len) + " bytes",
                 truncated, roundtrip);
  }

  // Single-byte corruption at every offset: a low bit, the high bit, and a
  // full invert, which between them hit flags, length words, and tags.
  for (size_t i = 0; i < good.size(); ++i) {
    for (uint8_t mask : {0x01, 0x80, 0xFF}) {
      Bytes corrupted = good;
      corrupted[i] = static_cast<uint8_t>(corrupted[i] ^ mask);
      CheckAttempt(label,
                   "corruption at offset " + std::to_string(i) + " mask " +
                       std::to_string(mask),
                   corrupted, roundtrip);
    }
  }
}

// Roundtrip adapter for the common shape: Bytes Encode() const +
// static Result<T> Decode(const Bytes&).
template <typename T>
Roundtrip ByteCodec() {
  return [](const Bytes& data) -> Result<Bytes> {
    HCS_ASSIGN_OR_RETURN(T value, T::Decode(data));
    return value.Encode();
  };
}

WireValue RepresentativeValue() {
  return WireValue::OfRecord({
      {"host", WireValue::OfString("fiji.cs.washington.edu")},
      {"address", WireValue::OfUint32(0x0a000042)},
      {"aliases", WireValue::OfList({WireValue::OfString("fiji"),
                                     WireValue::OfString("fiji.cs")})},
      {"blob", WireValue::OfBlob(Bytes{1, 2, 3, 4, 5})},
      {"stamp", WireValue::OfUint64(0x1122334455667788ull)},
  });
}

ChCredentials RepresentativeCredentials() {
  ChCredentials credentials;
  credentials.user = "svc:CSL:Xerox";
  credentials.password = "plaintext";
  return credentials;
}

ChName RepresentativeChName() {
  ChName name;
  name.object = "Dorado";
  name.domain = "CSL";
  name.organization = "Xerox";
  return name;
}

ResourceRecord RepresentativeRecord() {
  return ResourceRecord::MakeA("fiji.cs.washington.edu", 0x0a000042);
}

TEST(DecodeSweepTest, WireValue) {
  Sweep("WireValue", RepresentativeValue().Encode(), ByteCodec<WireValue>());
}

TEST(DecodeSweepTest, NsmQueryRequest) {
  NsmQueryRequest request;
  request.name = HnsName::Parse("BIND!fiji.cs.washington.edu").value();
  request.args = RepresentativeValue();
  Sweep("NsmQueryRequest", request.Encode(), ByteCodec<NsmQueryRequest>());
}

TEST(DecodeSweepTest, FindNsmRequest) {
  FindNsmRequest request;
  request.context = "BIND";
  request.query_class = "HostAddress";
  Sweep("FindNsmRequest", request.Encode(), ByteCodec<FindNsmRequest>());
}

TEST(DecodeSweepTest, FindNsmResponse) {
  FindNsmResponse response;
  response.nsm_name = "BindingNSM-BIND";
  response.binding.service_name = "nsm";
  response.binding.host = "yakima.cs.washington.edu";
  response.binding.address = 0x0a000017;
  response.binding.port = 711;
  response.binding.program = 400100;
  Sweep("FindNsmResponse", response.Encode(), ByteCodec<FindNsmResponse>());
}

TEST(DecodeSweepTest, AgentQueryRequest) {
  AgentQueryRequest request;
  request.name = HnsName::Parse("CH!Dorado:CSL:Xerox").value();
  request.query_class = "HostAddress";
  request.args = RepresentativeValue();
  Sweep("AgentQueryRequest", request.Encode(), ByteCodec<AgentQueryRequest>());
}

TEST(DecodeSweepTest, BindQueryRequest) {
  BindQueryRequest request;
  request.name = "fiji.cs.washington.edu";
  request.type = RrType::kA;
  request.recursion_desired = true;
  Sweep("BindQueryRequest", request.Encode(), ByteCodec<BindQueryRequest>());
}

TEST(DecodeSweepTest, BindQueryResponse) {
  BindQueryResponse response;
  response.rcode = Rcode::kNoError;
  response.authoritative = true;
  response.answers = {RepresentativeRecord(),
                      ResourceRecord::MakeA("yakima.cs.washington.edu", 7)};
  Sweep("BindQueryResponse", response.Encode(), ByteCodec<BindQueryResponse>());
}

TEST(DecodeSweepTest, BindUpdateRequest) {
  BindUpdateRequest request;
  request.op = UpdateOp::kAdd;
  request.record = RepresentativeRecord();
  Sweep("BindUpdateRequest", request.Encode(), ByteCodec<BindUpdateRequest>());
}

TEST(DecodeSweepTest, BindUpdateResponse) {
  BindUpdateResponse response;
  response.rcode = Rcode::kRefused;
  Sweep("BindUpdateResponse", response.Encode(), ByteCodec<BindUpdateResponse>());
}

TEST(DecodeSweepTest, BindInvalidateRequest) {
  BindInvalidateRequest request;
  request.name = "fiji.cs.washington.edu";
  Sweep("BindInvalidateRequest", request.Encode(),
        ByteCodec<BindInvalidateRequest>());
}

TEST(DecodeSweepTest, BindAxfrRequest) {
  BindAxfrRequest request;
  request.origin = "cs.washington.edu";
  Sweep("BindAxfrRequest", request.Encode(), ByteCodec<BindAxfrRequest>());
}

TEST(DecodeSweepTest, BindAxfrResponse) {
  BindAxfrResponse response;
  response.rcode = Rcode::kNoError;
  response.serial = 1987;
  response.records = {RepresentativeRecord()};
  Sweep("BindAxfrResponse", response.Encode(), ByteCodec<BindAxfrResponse>());
}

TEST(DecodeSweepTest, ResourceRecord) {
  XdrEncoder enc;
  RepresentativeRecord().EncodeTo(&enc);
  Sweep("ResourceRecord", enc.Take(), [](const Bytes& data) -> Result<Bytes> {
    XdrDecoder dec(data);
    HCS_ASSIGN_OR_RETURN(ResourceRecord record, ResourceRecord::DecodeFrom(&dec));
    XdrEncoder out;
    record.EncodeTo(&out);
    return out.Take();
  });
}

TEST(DecodeSweepTest, ChCredentials) {
  CourierEncoder enc;
  RepresentativeCredentials().EncodeTo(&enc);
  Sweep("ChCredentials", enc.Take(), [](const Bytes& data) -> Result<Bytes> {
    CourierDecoder dec(data);
    HCS_ASSIGN_OR_RETURN(ChCredentials credentials,
                         ChCredentials::DecodeFrom(&dec));
    CourierEncoder out;
    credentials.EncodeTo(&out);
    return out.Take();
  });
}

TEST(DecodeSweepTest, ChRetrieveItemRequest) {
  ChRetrieveItemRequest request;
  request.credentials = RepresentativeCredentials();
  request.name = RepresentativeChName();
  request.property = kChPropAddress;
  Sweep("ChRetrieveItemRequest", request.Encode(),
        ByteCodec<ChRetrieveItemRequest>());
}

TEST(DecodeSweepTest, ChRetrieveItemResponse) {
  ChRetrieveItemResponse response;
  response.distinguished_name = RepresentativeChName();
  response.item = RepresentativeValue();
  Sweep("ChRetrieveItemResponse", response.Encode(),
        ByteCodec<ChRetrieveItemResponse>());
}

TEST(DecodeSweepTest, ChAddItemRequest) {
  ChAddItemRequest request;
  request.credentials = RepresentativeCredentials();
  request.name = RepresentativeChName();
  request.property = kChPropService;
  request.item = RepresentativeValue();
  Sweep("ChAddItemRequest", request.Encode(), ByteCodec<ChAddItemRequest>());
}

TEST(DecodeSweepTest, ChDeleteItemRequest) {
  ChDeleteItemRequest request;
  request.credentials = RepresentativeCredentials();
  request.name = RepresentativeChName();
  request.property = kChPropService;
  Sweep("ChDeleteItemRequest", request.Encode(),
        ByteCodec<ChDeleteItemRequest>());
}

TEST(DecodeSweepTest, ChListObjectsRequest) {
  ChListObjectsRequest request;
  request.credentials = RepresentativeCredentials();
  request.domain = "CSL";
  request.organization = "Xerox";
  Sweep("ChListObjectsRequest", request.Encode(),
        ByteCodec<ChListObjectsRequest>());
}

TEST(DecodeSweepTest, ChListObjectsResponse) {
  ChListObjectsResponse response;
  response.objects = {"Dorado", "Dolphin", "Dandelion"};
  Sweep("ChListObjectsResponse", response.Encode(),
        ByteCodec<ChListObjectsResponse>());
}

TEST(DecodeSweepTest, RequestContextWire) {
  RequestContextWire wire;
  wire.budget_ms = 250;
  wire.attempt = 2;
  wire.trace_id = 0xabcdef0123456789ull;
  XdrEncoder enc;
  wire.EncodeTo(enc);
  Sweep("RequestContextWire", enc.Take(), [](const Bytes& data) -> Result<Bytes> {
    XdrDecoder dec(data);
    HCS_ASSIGN_OR_RETURN(RequestContextWire parsed,
                         RequestContextWire::DecodeFrom(dec));
    XdrEncoder out;
    parsed.EncodeTo(out);
    return out.Take();
  });
}

TEST(DecodeSweepTest, TraceHeader) {
  TraceHeader header;
  header.seed = 0x5eedf00d;
  header.population = 1'000'000;
  header.contexts = 64;
  header.zipf_s_micros = 1'100'000;
  header.event_count = 3;
  Sweep("TraceHeader", header.Encode(), ByteCodec<TraceHeader>());
}

TEST(DecodeSweepTest, TraceEvent) {
  TraceEvent event;
  event.at_us = 1'234'567;
  event.client = 42;
  event.kind = TraceEventKind::kResolveMany;
  event.pair = 17;
  event.count = 4;
  Sweep("TraceEvent", event.Encode(), ByteCodec<TraceEvent>());
}

TEST(DecodeSweepTest, WorkloadTrace) {
  WorkloadTrace trace;
  trace.header.seed = 0x5eedf00d;
  trace.header.population = 2;
  trace.header.contexts = 1;
  trace.header.zipf_s_micros = 1'000'000;
  for (uint32_t k = 0; k < 3; ++k) {
    TraceEvent event;
    event.at_us = 1000 + k;
    event.client = k;
    event.kind = static_cast<TraceEventKind>(k);
    event.pair = k;
    trace.events.push_back(event);
  }
  Sweep("WorkloadTrace", trace.Encode(), ByteCodec<WorkloadTrace>());
}

// The zero-copy call decoder, swept against the poisoned debug arena. Each
// attempt lands the bytes in an EXACTLY-sized arena allocation (poison on
// both sides under the sanitizer legs of check.sh), decodes through
// DecodeCallView, and checks three contracts on top of the usual ones:
// the view decoder and the owning decoder agree on accept/reject, a
// surviving view's bytes equal the owning parse's args, and the view
// re-encodes to the same fixed point.
void SweepCallView(const std::string& label, ControlKind kind) {
  const ControlProtocol& control = GetControlProtocol(kind);
  RpcCall call;
  call.xid = 42;
  call.program = 100003;
  call.version = 2;
  call.procedure = 6;
  call.args = Bytes{0xde, 0xad, 0xbe, 0xef, 0x01};
  Bytes good = control.EncodeCall(call);

  auto arena = std::make_shared<Arena>(1024);
  Roundtrip roundtrip = [&control, label, arena](const Bytes& data) -> Result<Bytes> {
    arena->Reset();
    ScopedArenaViewBinding binding(arena.get());
    uint8_t* frame = arena->Allocate(data.empty() ? 1 : data.size());
    if (!data.empty()) {
      std::memcpy(frame, data.data(), data.size());
    }
    Result<RpcCallView> view = control.DecodeCallView(frame, data.size());
    Result<RpcCall> owned = control.DecodeCall(data);
    EXPECT_EQ(view.ok(), owned.ok())
        << label << ": view and owning decoders disagree on a "
        << data.size() << "-byte frame";
    if (!view.ok()) {
      return view.status();
    }
    EXPECT_EQ(view->args.ToBytes(), owned->args)
        << label << ": view args diverge from the owning parse";
    RpcCall reparsed;
    reparsed.xid = view->xid;
    reparsed.program = view->program;
    reparsed.version = view->version;
    reparsed.procedure = view->procedure;
    reparsed.context = view->context;
    reparsed.args = view->args.ToBytes();
    return control.EncodeCall(reparsed);
  };
  Sweep(label, good, roundtrip);
}

TEST(DecodeSweepTest, SunRpcCallView) {
  SweepCallView("SunRpcCallView", ControlKind::kSunRpc);
}

TEST(DecodeSweepTest, CourierCallView) {
  SweepCallView("CourierCallView", ControlKind::kCourier);
}

TEST(DecodeSweepTest, RawCallView) {
  SweepCallView("RawCallView", ControlKind::kRaw);
}

// Runs last (gtest preserves file order within a suite): the sweep's own
// coverage record, quoted in EXPERIMENTS.md.
TEST(DecodeSweepTest, ZReportCoverage) {
  const SweepTotals& totals = Totals();
  std::printf("[decode-sweep] %zu message types, %zu attempts "
              "(%zu rejected cleanly, %zu tolerated and fixed-point stable)\n",
              totals.types, totals.attempts, totals.rejected, totals.tolerated);
  EXPECT_GE(totals.types, 24u);  // includes the three *CallView sweeps
}

}  // namespace
}  // namespace hcs
