// Tests for the mail application: the MTA composing MailboxInfo +
// HRPCBinding, and the two mail-drop flavours.

#include <gtest/gtest.h>

#include "src/apps/mail.h"
#include "src/wire/xdr.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

class MailTest : public ::testing::Test {
 protected:
  MailTest()
      : client_(bed_.MakeClient(Arrangement::kAllLinked)), agent_(client_.session.get()) {}

  Testbed bed_;
  ClientSetup client_;
  MailAgent agent_;
};

TEST_F(MailTest, DeliversToUnixWorldViaMxAndSunRpc) {
  Result<std::string> relay =
      agent_.Deliver("Mail-BIND!notkin@cs.washington.edu", "Subject: hi\n\nhello");
  ASSERT_TRUE(relay.ok()) << relay.status();
  EXPECT_EQ(*relay, "june.cs.washington.edu") << "the lowest-preference MX relay";
  EXPECT_EQ(bed_.mail_drop_unix()->SpoolSize("notkin@cs.washington.edu"), 1u);
  EXPECT_EQ(bed_.mail_drop_unix()->SpooledMessage("notkin@cs.washington.edu", 0).value(),
            "Subject: hi\n\nhello");
}

TEST_F(MailTest, DeliversToXeroxWorldViaMailboxPropertyAndCourier) {
  Result<std::string> relay = agent_.Deliver("Mail-CH!Purcell:CSL:Xerox", "grapevine note");
  ASSERT_TRUE(relay.ok()) << relay.status();
  EXPECT_EQ(*relay, kChServerHost);
  EXPECT_EQ(bed_.mail_drop_xerox()->SpoolSize("Purcell:CSL:Xerox"), 1u);
  EXPECT_EQ(bed_.mail_drop_xerox()->SpooledMessage("Purcell:CSL:Xerox", 0).value(),
            "grapevine note");
}

TEST_F(MailTest, MultipleMessagesSpoolInOrder) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        agent_.Deliver("Mail-BIND!levy@cs.washington.edu", "msg " + std::to_string(i)).ok());
  }
  EXPECT_EQ(bed_.mail_drop_unix()->SpoolSize("levy@cs.washington.edu"), 3u);
  EXPECT_EQ(bed_.mail_drop_unix()->SpooledMessage("levy@cs.washington.edu", 2).value(),
            "msg 2");
  EXPECT_EQ(agent_.deliveries(), 3u);
}

TEST_F(MailTest, UnknownRecipientsAndWorlds) {
  // In-zone domain with no MX records.
  EXPECT_EQ(agent_.Deliver("Mail-BIND!x@ghost.cs.washington.edu", "m").status().code(),
            StatusCode::kNotFound);
  // Domain outside every zone this server knows: the name service cannot
  // answer at all.
  EXPECT_EQ(agent_.Deliver("Mail-BIND!x@nowhere.example", "m").status().code(),
            StatusCode::kUnavailable);
  // Unknown CH user: no mailbox property.
  EXPECT_EQ(agent_.Deliver("Mail-CH!Ghost:CSL:Xerox", "m").status().code(),
            StatusCode::kNotFound);
  // Not a mail context at all.
  EXPECT_EQ(agent_.Deliver("BIND!fiji.cs.washington.edu", "m").status().code(),
            StatusCode::kInvalidArgument);
  // Malformed recipient.
  EXPECT_EQ(agent_.Deliver("no-separator", "m").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MailTest, SecondDeliveryToSameDomainIsMuchCheaper) {
  double t0 = bed_.world().clock().NowMs();
  (void)agent_.Deliver("Mail-BIND!a@cs.washington.edu", "first");  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double cold = bed_.world().clock().NowMs() - t0;
  t0 = bed_.world().clock().NowMs();
  (void)agent_.Deliver("Mail-BIND!b@cs.washington.edu", "second");  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double warm = bed_.world().clock().NowMs() - t0;
  // The MX result, the meta mappings, and the relay binding are all cached;
  // only the resolution probes and the DELIVER call remain.
  EXPECT_LT(warm, cold / 2);
  EXPECT_LT(warm, 250.0);
}

TEST_F(MailTest, SpoolIsReadableOverTheWire) {
  ASSERT_TRUE(agent_.Deliver("Mail-BIND!reader@cs.washington.edu", "the body").ok());

  // A mail *reader* fetches through the same binding machinery.
  Importer importer(client_.session.get());
  Result<HrpcBinding> binding = importer.Import(
      "MailDrop", std::string(kContextBindBinding) + "!june.cs.washington.edu");
  ASSERT_TRUE(binding.ok()) << binding.status();

  XdrEncoder list;
  list.PutString("reader@cs.washington.edu");
  Result<Bytes> count_reply =
      client_.session->rpc_client().Call(*binding, kMailProcList, list.Take());
  ASSERT_TRUE(count_reply.ok()) << count_reply.status();
  XdrDecoder count_dec(*count_reply);
  EXPECT_EQ(count_dec.GetUint32().value(), 1u);

  XdrEncoder fetch;
  fetch.PutString("reader@cs.washington.edu");
  fetch.PutUint32(0);
  Result<Bytes> fetch_reply =
      client_.session->rpc_client().Call(*binding, kMailProcFetch, fetch.Take());
  ASSERT_TRUE(fetch_reply.ok()) << fetch_reply.status();
  XdrDecoder fetch_dec(*fetch_reply);
  EXPECT_EQ(fetch_dec.GetString().value(), "the body");
}

TEST_F(MailTest, AgentArrangementDeliversToo) {
  ClientSetup agent_client = bed_.MakeClient(Arrangement::kAgent);
  MailAgent remote_agent(agent_client.session.get());
  Result<std::string> relay =
      remote_agent.Deliver("Mail-BIND!via-agent@cs.washington.edu", "through the agent");
  ASSERT_TRUE(relay.ok()) << relay.status();
  EXPECT_EQ(bed_.mail_drop_unix()->SpoolSize("via-agent@cs.washington.edu"), 1u);
}

}  // namespace
}  // namespace hcs
