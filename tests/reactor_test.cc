// Reactor runtime tests (ctest label `concurrency`; TSan-clean under
// -DHCS_SANITIZE=thread):
//
//   - Start/Stop idempotence and restartability, including Serve after
//     StopAll on a reactor-mode UdpServerHost.
//   - End-to-end echo over the reactor for every control protocol, on both
//     UDP and length-prefixed stream endpoints.
//   - The FindNSM vs Register/Unregister storm from concurrency_test.cc,
//     re-run with the meta authority served by the reactor.
//   - RequestContext deadline semantics: client-side shed before send,
//     dispatch-time shed when queue delay eats the budget, ambient
//     inheritance across a server hop, NSM budget checks, and per-attempt
//     retry with backoff against a flaky endpoint.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/bindns/server.h"
#include "src/hns/hns.h"
#include "src/hns/meta_store.h"
#include "src/hns/name.h"
#include "src/nsm/host_table.h"
#include "src/rpc/client.h"
#include "src/rpc/context.h"
#include "src/rpc/ports.h"
#include "src/rpc/reactor.h"
#include "src/rpc/server.h"
#include "src/rpc/stream_transport.h"
#include "src/rpc/udp_transport.h"
#include "src/sim/world.h"
#include "src/wire/value.h"

namespace hcs {
namespace {

HrpcBinding LoopbackBinding(uint16_t port, uint32_t program, ControlKind control,
                            TransportKind transport = TransportKind::kUdp) {
  HrpcBinding b;
  b.service_name = "reactor-test";
  b.host = "localhost";
  b.port = port;
  b.program = program;
  b.version = 2;
  b.control = control;
  b.transport = transport;
  return b;
}

TEST(ReactorTest, StartStopIdempotentAndRestartable) {
  Reactor reactor;
  EXPECT_FALSE(reactor.running());
  ASSERT_TRUE(reactor.Start().ok());
  ASSERT_TRUE(reactor.Start().ok()) << "second Start must be a no-op";
  EXPECT_TRUE(reactor.running());
  reactor.Stop();
  reactor.Stop();  // idempotent
  EXPECT_FALSE(reactor.running());
  ASSERT_TRUE(reactor.Start().ok()) << "a stopped reactor must restart";
  EXPECT_TRUE(reactor.running());
  reactor.Stop();
}

TEST(ReactorTest, ServeAfterStopAllRestartsTheReactor) {
  UdpServerHost host(ServeMode::kReactor);
  RpcServer server(ControlKind::kRaw, "restart-echo");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });

  UdpTransport transport;
  RpcClient client(/*world=*/nullptr, "localclient", &transport);

  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE(round);
    Result<uint16_t> port = host.Serve(&server, 0);
    ASSERT_TRUE(port.ok()) << port.status();
    Result<Bytes> reply =
        client.Call(LoopbackBinding(*port, 7, ControlKind::kRaw), 1, Bytes{9, 8, 7});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(*reply, (Bytes{9, 8, 7}));
    host.StopAll();
  }
}

TEST(ReactorTest, EchoOverReactorAllControlProtocols) {
  UdpServerHost host(ServeMode::kReactor);
  UdpTransport udp;
  TcpStreamTransport tcp;
  RpcClient udp_client(/*world=*/nullptr, "localclient", &udp);
  RpcClient tcp_client(/*world=*/nullptr, "localclient", &tcp);

  std::vector<std::unique_ptr<RpcServer>> keepalive;
  for (ControlKind kind : {ControlKind::kSunRpc, ControlKind::kCourier, ControlKind::kRaw}) {
    SCOPED_TRACE(ControlKindName(kind));
    auto server = std::make_unique<RpcServer>(kind, "reactor-echo");
    server->RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> {
      Bytes out = args;
      out.push_back(0x42);
      return out;
    });

    Result<uint16_t> udp_port = host.Serve(server.get(), 0);
    ASSERT_TRUE(udp_port.ok()) << udp_port.status();
    Result<Bytes> reply =
        udp_client.Call(LoopbackBinding(*udp_port, 7, kind), 1, Bytes{1, 2, 3});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(*reply, (Bytes{1, 2, 3, 0x42}));

    Result<uint16_t> tcp_port = host.ServeStream(server.get(), 0);
    ASSERT_TRUE(tcp_port.ok()) << tcp_port.status();
    reply = tcp_client.Call(LoopbackBinding(*tcp_port, 7, kind, TransportKind::kTcp), 1,
                            Bytes{4, 5});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(*reply, (Bytes{4, 5, 0x42}));

    keepalive.push_back(std::move(server));
  }
  EXPECT_GE(host.reactor()->dispatched(), 6u);
  host.StopAll();
}

// A linked HostAddress NSM answering from a fixed table (see
// concurrency_test.cc) — bounds the FindNSM recursion without the network.
class FixedAddressNsm : public Nsm {
 public:
  FixedAddressNsm(NsmInfo info, uint32_t address)
      : info_(std::move(info)), address_(address) {}

  const NsmInfo& info() const override { return info_; }

  Result<WireValue> Query(const HnsName& name, const WireValue&) override {
    return RecordBuilder().U32("address", address_).Str("host", name.individual).Build();
  }

 private:
  NsmInfo info_;
  uint32_t address_;
};

// The composite-invalidation storm from concurrency_test.cc, with the meta
// authority served by the reactor instead of a dedicated thread. The BIND
// server touches the (non-thread-safe) World, so it relies on the
// reactor's serial-per-endpoint dispatch contract.
TEST(ReactorTest, FindNsmStormAgainstReactorServedMetaStore) {
  World world;
  ASSERT_TRUE(world.network().AddHost("metahost", MachineType::kMicroVax, OsType::kUnix).ok());
  BindServerOptions meta_options;
  meta_options.allow_dynamic_update = true;
  meta_options.allow_unspecified_type = true;
  BindServer* meta_bind = BindServer::InstallOn(&world, "metahost", meta_options).value();
  ASSERT_TRUE(meta_bind->AddZone(MetaStore::kMetaZoneOrigin).ok());

  UdpServerHost server_host(ServeMode::kReactor);
  Result<uint16_t> port = server_host.Serve(meta_bind->rpc(), 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  HnsOptions options;
  options.meta_server_host = "metahost";
  options.composite_cache = true;
  options.cache.negative_ttl_seconds = 1;
  Hns hns(/*world=*/nullptr, "client", &transport, options);
  hns.meta().set_meta_port(*port);

  NsmInfo addr_info;
  addr_info.nsm_name = "AddrNSM";
  addr_info.query_class = kQueryClassHostAddress;
  addr_info.ns_name = "UW-BIND";
  addr_info.host = "metahost";
  addr_info.host_context = "hostctx";
  ASSERT_TRUE(hns.LinkNsm(std::make_shared<FixedAddressNsm>(addr_info, 0x7f000001)).ok());

  NameServiceInfo ns_info;
  ns_info.name = "UW-BIND";
  ns_info.type = "BIND";
  ASSERT_TRUE(hns.RegisterNameService(ns_info).ok());
  ASSERT_TRUE(hns.RegisterContext("stormctx", "UW-BIND").ok());
  ASSERT_TRUE(hns.RegisterContext("hostctx", "UW-BIND").ok());
  ASSERT_TRUE(hns.RegisterNsm(addr_info).ok());
  NsmInfo storm_info;
  storm_info.nsm_name = "StormNSM";
  storm_info.query_class = kQueryClassHrpcBinding;
  storm_info.ns_name = "UW-BIND";
  storm_info.host = "nsmhost";
  storm_info.host_context = "hostctx";
  storm_info.program = 4242;
  storm_info.version = 1;
  storm_info.port = 999;
  ASSERT_TRUE(hns.RegisterNsm(storm_info).ok());

  HnsName name;
  name.context = "stormctx";
  name.individual = "anything";

  {
    Result<NsmHandle> warm = hns.FindNsm(name, kQueryClassHrpcBinding);
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ(warm->nsm_name, "StormNSM");
  }

  constexpr int kReaders = 4;
  constexpr int kReadsPerThread = 150;
  std::atomic<int> ok_results{0};
  std::atomic<int> clean_failures{0};
  std::atomic<int> wrong_results{0};

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        Result<NsmHandle> handle = hns.FindNsm(name, kQueryClassHrpcBinding);
        if (handle.ok()) {
          if (handle->nsm_name == "StormNSM" && handle->binding.program == 4242 &&
              handle->binding.port == 999 && handle->binding.address == 0x7f000001) {
            ++ok_results;
          } else {
            ++wrong_results;
          }
        } else {
          ++clean_failures;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int round = 0; round < 12; ++round) {
      EXPECT_TRUE(hns.UnregisterNsm("UW-BIND", kQueryClassHrpcBinding).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      EXPECT_TRUE(hns.RegisterNsm(storm_info).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(wrong_results.load(), 0) << "a FindNSM result was torn by invalidation";
  EXPECT_EQ(ok_results.load() + clean_failures.load(), kReaders * kReadsPerThread);

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool converged = false;
  while (std::chrono::steady_clock::now() < deadline) {
    Result<NsmHandle> handle = hns.FindNsm(name, kQueryClassHrpcBinding);
    if (handle.ok() && handle->nsm_name == "StormNSM") {
      converged = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(converged) << "FindNSM never recovered after the registration storm";
  server_host.StopAll();
}

// --- RequestContext deadline semantics --------------------------------------

TEST(ReactorTest, ClientShedsSpentBudgetBeforeSending) {
  UdpServerHost host(ServeMode::kReactor);
  std::atomic<int> invocations{0};
  RpcServer server(ControlKind::kRaw, "never-called");
  server.RegisterProcedure(7, 1, [&](const Bytes& args) -> Result<Bytes> {
    ++invocations;
    return args;
  });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  RpcClient client(/*world=*/nullptr, "localclient", &transport);
  RpcCallInfo info;
  Result<Bytes> reply = client.Call(LoopbackBinding(*port, 7, ControlKind::kRaw), 1,
                                    Bytes{1}, RequestContext::WithTimeout(0), &info);
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(info.attempts, 0u) << "a spent budget must shed before the first send";
  EXPECT_NE(info.trace_id, 0u);

  // Give any stray datagram time to arrive; none may.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(invocations.load(), 0);
  host.StopAll();
}

TEST(ReactorTest, QueueDelayCountsAgainstTheBudget) {
  // One serial endpoint whose handler holds the queue for 250 ms. A second
  // request with a 100 ms budget arrives while the first is being served;
  // by the time it is dispatched its (arrival-rebased) deadline has passed,
  // so the server sheds it without invoking the handler.
  UdpServerHost host(ServeMode::kReactor);
  std::atomic<int> invocations{0};
  RpcServer server(ControlKind::kRaw, "slow-serial");
  server.RegisterProcedure(7, 1, [&](const Bytes& args) -> Result<Bytes> {
    ++invocations;
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    return args;
  });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  std::thread front([&] {
    UdpTransport transport(/*timeout_ms=*/2000);
    RpcClient client(/*world=*/nullptr, "localclient", &transport);
    Result<Bytes> reply =
        client.Call(LoopbackBinding(*port, 7, ControlKind::kRaw), 1, Bytes{1});
    EXPECT_TRUE(reply.ok()) << reply.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  UdpTransport transport(/*timeout_ms=*/2000);
  RpcClient client(/*world=*/nullptr, "localclient", &transport);
  Result<Bytes> reply = client.Call(LoopbackBinding(*port, 7, ControlKind::kRaw), 1,
                                    Bytes{2}, RequestContext::WithTimeout(100));
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
  front.join();

  // Let the serial queue drain fully, then confirm the budgeted request was
  // shed at dispatch rather than served late.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(invocations.load(), 1) << "the expired request must be shed, not served";
  host.StopAll();
}

TEST(ReactorTest, AmbientContextPropagatesAcrossServerHop) {
  // front's handler burns the whole budget, then makes a nested call to
  // `backend` without passing a context: the ambient (decoded) context must
  // be inherited, found expired, and shed before the nested send.
  UdpServerHost host(ServeMode::kReactor);
  std::atomic<int> backend_invocations{0};
  RpcServer backend(ControlKind::kRaw, "backend");
  backend.RegisterProcedure(8, 1, [&](const Bytes& args) -> Result<Bytes> {
    ++backend_invocations;
    return args;
  });
  Result<uint16_t> backend_port = host.Serve(&backend, 0);
  ASSERT_TRUE(backend_port.ok()) << backend_port.status();

  UdpTransport nested_transport;
  RpcClient nested_client(/*world=*/nullptr, "fronthost", &nested_transport);
  RpcServer front(ControlKind::kRaw, "front");
  front.RegisterProcedure(7, 1, [&](const Bytes& args) -> Result<Bytes> {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return nested_client.Call(LoopbackBinding(*backend_port, 8, ControlKind::kRaw), 1, args);
  });
  Result<uint16_t> front_port = host.Serve(&front, 0);
  ASSERT_TRUE(front_port.ok()) << front_port.status();

  UdpTransport transport(/*timeout_ms=*/2000);
  RpcClient client(/*world=*/nullptr, "localclient", &transport);
  Result<Bytes> reply = client.Call(LoopbackBinding(*front_port, 7, ControlKind::kRaw), 1,
                                    Bytes{1}, RequestContext::WithTimeout(100));
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(backend_invocations.load(), 0)
      << "the nested call must inherit the ambient deadline and shed";
  host.StopAll();
}

TEST(ReactorTest, NsmShedsQueryWhenAmbientBudgetSpent) {
  UdpTransport transport;
  NsmInfo info;
  info.nsm_name = "HostTableNSM";
  info.query_class = kQueryClassHostAddress;
  info.ns_name = "HostTable";
  info.host = "tablehost";
  info.host_context = "hostctx";
  HostTableHostAddressNsm nsm(/*world=*/nullptr, "client", &transport, info, "tablehost");

  HnsName name;
  name.context = "hostctx";
  name.individual = "fiji";

  ScopedRequestContext scope(RequestContext::WithTimeout(0));
  Result<WireValue> result = nsm.Query(name, WireValue::OfRecord({}));
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
      << "an NSM must shed a query whose budget is already spent";
}

TEST(ReactorTest, HnsFindNsmShedsOnEntryWithoutMetaTraffic) {
  UdpTransport transport;
  HnsOptions options;
  options.meta_server_host = "metahost";
  Hns hns(/*world=*/nullptr, "client", &transport, options);

  HnsName name;
  name.context = "anyctx";
  name.individual = "x";
  Result<NsmHandle> handle =
      hns.FindNsm(name, kQueryClassHrpcBinding, RequestContext::WithTimeout(0));
  EXPECT_EQ(handle.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(hns.meta().remote_lookups(), 0u)
      << "a shed FindNSM must not touch the meta store";
}

// A service whose first `failures` requests are dropped (no reply), after
// which it delegates — the flaky-endpoint case the per-attempt retry loop
// exists for.
class FlakyService : public SimService {
 public:
  FlakyService(SimService* inner, int failures) : inner_(inner), failures_(failures) {}

  Result<Bytes> HandleMessage(const Bytes& request) override {
    if (failures_.fetch_sub(1, std::memory_order_acq_rel) > 0) {
      return UnavailableError("flaky: dropping this request");
    }
    return inner_->HandleMessage(request);
  }

 private:
  SimService* inner_;
  std::atomic<int> failures_;
};

TEST(ReactorTest, BudgetedCallRetriesThroughTransientLoss) {
  UdpServerHost host(ServeMode::kReactor);
  RpcServer server(ControlKind::kRaw, "flaky-echo");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  FlakyService flaky(&server, /*failures=*/2);
  Result<uint16_t> port = host.Serve(&flaky, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  // Short per-try transport timeout, generous overall budget: the first two
  // attempts are dropped on the floor and time out; the third succeeds.
  UdpTransport transport(/*timeout_ms=*/100);
  RpcClient client(/*world=*/nullptr, "localclient", &transport);
  RpcCallInfo info;
  Result<Bytes> reply = client.Call(LoopbackBinding(*port, 7, ControlKind::kRaw), 1,
                                    Bytes{5, 6}, RequestContext::WithTimeout(5000), &info);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, (Bytes{5, 6}));
  EXPECT_EQ(info.attempts, 3u);
  EXPECT_EQ(info.retries, 2u);
  host.StopAll();
}

TEST(ReactorTest, UnbudgetedCallStaysSingleAttempt) {
  UdpServerHost host(ServeMode::kReactor);
  RpcServer server(ControlKind::kRaw, "flaky-once");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  FlakyService flaky(&server, /*failures=*/1);
  Result<uint16_t> port = host.Serve(&flaky, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport(/*timeout_ms=*/100);
  RpcClient client(/*world=*/nullptr, "localclient", &transport);
  RpcCallInfo info;
  Result<Bytes> reply =
      client.Call(LoopbackBinding(*port, 7, ControlKind::kRaw), 1, Bytes{1},
                  RequestContext{}, &info);
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout)
      << "without a deadline there is no retry license";
  EXPECT_EQ(info.attempts, 1u);
  EXPECT_EQ(info.retries, 0u);
  host.StopAll();
}

// Singleflight followers must not outwait their own deadline when the
// leader's upstream fetch is slow.
TEST(ReactorTest, SingleflightFollowerHonorsItsOwnDeadline) {
  UdpServerHost host(ServeMode::kReactor);
  RpcServer slow_bind(ControlKind::kRaw, "slow-meta");
  slow_bind.RegisterProcedure(
      kBindProgram, kBindProcQuery, [](const Bytes&) -> Result<Bytes> {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return UnavailableError("never answers in time");
      });
  Result<uint16_t> port = host.ServeConcurrent(&slow_bind, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport(/*timeout_ms=*/600);
  RpcClient rpc(/*world=*/nullptr, "localclient", &transport);
  HnsCache cache(/*world=*/nullptr, CacheMode::kDemarshalled);
  MetaStore meta(&rpc, "localhost", "", &cache);
  meta.set_meta_port(*port);

  // Leader: no deadline, blocks on the slow upstream.
  std::thread leader([&] { (void)meta.ContextToNameService("sharedctx"); });  // hcs:ignore-status(leader blocks by design; the follower's deadline is the assertion)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Follower with a 100 ms budget: must give up on the coalesced wait when
  // its own deadline passes, not when the leader's fetch resolves.
  auto t0 = std::chrono::steady_clock::now();
  Result<std::string> ns = meta.ContextToNameService(
      "sharedctx", nullptr, RequestContext::WithTimeout(100));
  auto waited =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(ns.status().code(), StatusCode::kTimeout);
  EXPECT_LT(waited, 300) << "the follower outwaited its own deadline";
  leader.join();
  host.StopAll();
}

}  // namespace
}  // namespace hcs
