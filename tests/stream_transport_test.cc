// Tests for the connection-oriented simulated transport.

#include <gtest/gtest.h>

#include "src/rpc/client.h"
#include "src/rpc/server.h"
#include "src/rpc/stream_transport.h"

namespace hcs {
namespace {

class StreamTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(world_.network().AddHost("client", MachineType::kSun, OsType::kUnix).ok());
    ASSERT_TRUE(world_.network().AddHost("server", MachineType::kSun, OsType::kUnix).ok());
    server_ = std::make_unique<RpcServer>(ControlKind::kSunRpc, "stream-test");
    server_->RegisterProcedure(9, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
    ASSERT_TRUE(world_.RegisterService("server", 2000, server_.get()).ok());
  }

  HrpcBinding Binding() {
    HrpcBinding b;
    b.host = "server";
    b.port = 2000;
    b.program = 9;
    b.version = 2;
    b.control = ControlKind::kSunRpc;
    b.transport = TransportKind::kTcp;
    return b;
  }

  World world_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(StreamTransportTest, FirstCallPaysConnectionSetup) {
  StreamNetTransport stream(&world_);
  RpcClient client(&world_, "client", &stream);

  double t0 = world_.clock().NowMs();
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  double first = world_.clock().NowMs() - t0;
  t0 = world_.clock().NowMs();
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  double second = world_.clock().NowMs() - t0;

  EXPECT_GT(first, second) << "connection setup charged once";
  EXPECT_NEAR(first - second,
              world_.costs().NetRttMs(false, 0, 0) + world_.costs().tcp_connect_cpu_ms,
              1e-3);
  EXPECT_EQ(stream.connects(), 1u);
  EXPECT_EQ(stream.open_connections(), 1u);
}

TEST_F(StreamTransportTest, CloseForcesReestablishment) {
  StreamNetTransport stream(&world_);
  RpcClient client(&world_, "client", &stream);
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  stream.CloseConnection("client", "server", 2000);
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  EXPECT_EQ(stream.connects(), 2u);

  stream.CloseAll();
  EXPECT_EQ(stream.open_connections(), 0u);
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  EXPECT_EQ(stream.connects(), 3u);
}

TEST_F(StreamTransportTest, ServerDeathDropsTheConnection) {
  StreamNetTransport stream(&world_);
  RpcClient client(&world_, "client", &stream);
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  EXPECT_EQ(stream.open_connections(), 1u);

  world_.UnregisterService("server", 2000);
  EXPECT_FALSE(client.Call(Binding(), 1, Bytes{1}).ok());
  EXPECT_EQ(stream.open_connections(), 0u) << "a dead peer kills the cached connection";

  // Server restarts; the client reconnects transparently (the failed call
  // rode the stale connection, so this is the second establishment).
  ASSERT_TRUE(world_.RegisterService("server", 2000, server_.get()).ok());
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  EXPECT_EQ(stream.connects(), 2u);
}

TEST_F(StreamTransportTest, ConnectionsArePerEndpointAndDirection) {
  ASSERT_TRUE(world_.network().AddHost("other", MachineType::kSun, OsType::kUnix).ok());
  auto second_server = std::make_unique<RpcServer>(ControlKind::kSunRpc, "s2");
  second_server->RegisterProcedure(9, 1,
                                   [](const Bytes& args) -> Result<Bytes> { return args; });
  ASSERT_TRUE(world_.RegisterService("server", 2001, second_server.get()).ok());

  StreamNetTransport stream(&world_);
  RpcClient client(&world_, "client", &stream);
  HrpcBinding b1 = Binding();
  HrpcBinding b2 = Binding();
  b2.port = 2001;
  ASSERT_TRUE(client.Call(b1, 1, Bytes{1}).ok());
  ASSERT_TRUE(client.Call(b2, 1, Bytes{1}).ok());
  EXPECT_EQ(stream.open_connections(), 2u) << "one connection per (peer, port)";
}

}  // namespace
}  // namespace hcs
