// Tests for the connection-oriented transports: the simulated
// StreamNetTransport, and the real-socket TcpStreamTransport's framing
// robustness against dribbling peers (one byte at a time across the
// nonblocking socket) and bogus length prefixes.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/rpc/client.h"
#include "src/rpc/reactor.h"
#include "src/rpc/server.h"
#include "src/rpc/stream_transport.h"
#include "src/rpc/udp_transport.h"

namespace hcs {
namespace {

class StreamTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(world_.network().AddHost("client", MachineType::kSun, OsType::kUnix).ok());
    ASSERT_TRUE(world_.network().AddHost("server", MachineType::kSun, OsType::kUnix).ok());
    server_ = std::make_unique<RpcServer>(ControlKind::kSunRpc, "stream-test");
    server_->RegisterProcedure(9, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
    ASSERT_TRUE(world_.RegisterService("server", 2000, server_.get()).ok());
  }

  HrpcBinding Binding() {
    HrpcBinding b;
    b.host = "server";
    b.port = 2000;
    b.program = 9;
    b.version = 2;
    b.control = ControlKind::kSunRpc;
    b.transport = TransportKind::kTcp;
    return b;
  }

  World world_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(StreamTransportTest, FirstCallPaysConnectionSetup) {
  StreamNetTransport stream(&world_);
  RpcClient client(&world_, "client", &stream);

  double t0 = world_.clock().NowMs();
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  double first = world_.clock().NowMs() - t0;
  t0 = world_.clock().NowMs();
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  double second = world_.clock().NowMs() - t0;

  EXPECT_GT(first, second) << "connection setup charged once";
  EXPECT_NEAR(first - second,
              world_.costs().NetRttMs(false, 0, 0) + world_.costs().tcp_connect_cpu_ms,
              1e-3);
  EXPECT_EQ(stream.connects(), 1u);
  EXPECT_EQ(stream.open_connections(), 1u);
}

TEST_F(StreamTransportTest, CloseForcesReestablishment) {
  StreamNetTransport stream(&world_);
  RpcClient client(&world_, "client", &stream);
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  stream.CloseConnection("client", "server", 2000);
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  EXPECT_EQ(stream.connects(), 2u);

  stream.CloseAll();
  EXPECT_EQ(stream.open_connections(), 0u);
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  EXPECT_EQ(stream.connects(), 3u);
}

TEST_F(StreamTransportTest, ServerDeathDropsTheConnection) {
  StreamNetTransport stream(&world_);
  RpcClient client(&world_, "client", &stream);
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  EXPECT_EQ(stream.open_connections(), 1u);

  world_.UnregisterService("server", 2000);
  EXPECT_FALSE(client.Call(Binding(), 1, Bytes{1}).ok());
  EXPECT_EQ(stream.open_connections(), 0u) << "a dead peer kills the cached connection";

  // Server restarts; the client reconnects transparently (the failed call
  // rode the stale connection, so this is the second establishment).
  ASSERT_TRUE(world_.RegisterService("server", 2000, server_.get()).ok());
  ASSERT_TRUE(client.Call(Binding(), 1, Bytes{1}).ok());
  EXPECT_EQ(stream.connects(), 2u);
}

TEST_F(StreamTransportTest, ConnectionsArePerEndpointAndDirection) {
  ASSERT_TRUE(world_.network().AddHost("other", MachineType::kSun, OsType::kUnix).ok());
  auto second_server = std::make_unique<RpcServer>(ControlKind::kSunRpc, "s2");
  second_server->RegisterProcedure(9, 1,
                                   [](const Bytes& args) -> Result<Bytes> { return args; });
  ASSERT_TRUE(world_.RegisterService("server", 2001, second_server.get()).ok());

  StreamNetTransport stream(&world_);
  RpcClient client(&world_, "client", &stream);
  HrpcBinding b1 = Binding();
  HrpcBinding b2 = Binding();
  b2.port = 2001;
  ASSERT_TRUE(client.Call(b1, 1, Bytes{1}).ok());
  ASSERT_TRUE(client.Call(b2, 1, Bytes{1}).ok());
  EXPECT_EQ(stream.open_connections(), 2u) << "one connection per (peer, port)";
}

// --- Real-socket framing regressions ---------------------------------------

// A hand-rolled TCP server for one connection: reads the client's framed
// request whole, then writes the reply — header and payload — one byte at a
// time with small pauses, the worst-case dribbling peer.
class DribblingServer {
 public:
  DribblingServer() {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(listen(fd_, 1), 0);
  }

  ~DribblingServer() {
    if (thread_.joinable()) {
      thread_.join();
    }
    close(fd_);
  }

  uint16_t port() const { return port_; }

  // Serves exactly one exchange: echo the request payload back, dribbled.
  void ServeOneDribbled() {
    thread_ = std::thread([this] {
      int conn = accept(fd_, nullptr, nullptr);
      ASSERT_GE(conn, 0);
      uint8_t header[4];
      ASSERT_EQ(recv(conn, header, 4, MSG_WAITALL), 4);
      uint32_t frame_len = (static_cast<uint32_t>(header[0]) << 24) |
                           (static_cast<uint32_t>(header[1]) << 16) |
                           (static_cast<uint32_t>(header[2]) << 8) |
                           static_cast<uint32_t>(header[3]);
      std::vector<uint8_t> payload(frame_len);
      ASSERT_EQ(recv(conn, payload.data(), frame_len, MSG_WAITALL),
                static_cast<ssize_t>(frame_len));
      // Echo it back one byte at a time, pausing so each byte really does
      // land in its own segment at the client.
      std::vector<uint8_t> reply(header, header + 4);
      reply.insert(reply.end(), payload.begin(), payload.end());
      for (uint8_t byte : reply) {
        ASSERT_EQ(send(conn, &byte, 1, MSG_NOSIGNAL), 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      close(conn);
    });
  }

  // Serves one exchange whose reply header announces an absurd frame size.
  void ServeOneOversizedHeader() {
    thread_ = std::thread([this] {
      int conn = accept(fd_, nullptr, nullptr);
      ASSERT_GE(conn, 0);
      uint8_t header[4];
      ASSERT_EQ(recv(conn, header, 4, MSG_WAITALL), 4);
      uint32_t frame_len = (static_cast<uint32_t>(header[0]) << 24) |
                           (static_cast<uint32_t>(header[1]) << 16) |
                           (static_cast<uint32_t>(header[2]) << 8) |
                           static_cast<uint32_t>(header[3]);
      std::vector<uint8_t> payload(frame_len);
      ASSERT_EQ(recv(conn, payload.data(), frame_len, MSG_WAITALL),
                static_cast<ssize_t>(frame_len));
      uint8_t bogus[4] = {0xff, 0xff, 0xff, 0xff};  // 4 GB frame
      ASSERT_EQ(send(conn, bogus, 4, MSG_NOSIGNAL), 4);
      close(conn);
    });
  }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

TEST(TcpStreamTransportTest, ReassemblesDribbledReply) {
  DribblingServer server;
  server.ServeOneDribbled();

  TcpStreamTransport transport(/*timeout_ms=*/5000);
  Bytes message{0xde, 0xad, 0xbe, 0xef, 0x01};
  Result<Bytes> reply = transport.RoundTrip("client", "localhost", server.port(), message);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, message) << "partial reads must reassemble the full frame";
}

TEST(TcpStreamTransportTest, RejectsFrameBeyondCap) {
  DribblingServer server;
  server.ServeOneOversizedHeader();

  TcpStreamTransport transport(/*timeout_ms=*/2000);
  Result<Bytes> reply = transport.RoundTrip("client", "localhost", server.port(), Bytes{1});
  EXPECT_EQ(reply.status().code(), StatusCode::kProtocolError)
      << "a bogus length prefix means the stream is desynchronized";
  EXPECT_EQ(transport.connects(), 1u);

  // The poisoned connection must not be pooled: a dead port now refuses.
  Result<Bytes> again = transport.RoundTrip("client", "localhost", 1, Bytes{1});
  EXPECT_FALSE(again.ok());
}

TEST(TcpStreamTransportTest, RejectsOversizedOutboundMessage) {
  TcpStreamTransport transport;
  Bytes huge(kMaxStreamFrame + 1, 0xab);
  Result<Bytes> reply = transport.RoundTrip("client", "localhost", 1, huge);
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
}

// An echo SimService for driving the reactor's stream path directly.
class RawEchoService : public SimService {
 public:
  Result<Bytes> HandleMessage(const Bytes& request) override { return request; }
};

TEST(TcpStreamTransportTest, ReactorReassemblesDribbledRequest) {
  UdpServerHost host(ServeMode::kReactor);
  RawEchoService echo;
  Result<uint16_t> port = host.ServeStream(&echo, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  // Hand-rolled blocking client that dribbles the framed request into the
  // reactor one byte at a time, then expects the whole echo back.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(*port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  Bytes payload{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint8_t> framed{0, 0, 0, static_cast<uint8_t>(payload.size())};
  framed.insert(framed.end(), payload.begin(), payload.end());
  for (uint8_t byte : framed) {
    ASSERT_EQ(send(fd, &byte, 1, MSG_NOSIGNAL), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  std::vector<uint8_t> reply(framed.size());
  ASSERT_EQ(recv(fd, reply.data(), reply.size(), MSG_WAITALL),
            static_cast<ssize_t>(reply.size()));
  EXPECT_EQ(reply, framed) << "the reactor must reassemble a dribbled frame";
  close(fd);
  host.StopAll();
}

TEST(TcpStreamTransportTest, ReactorClosesConnectionOnOversizedFrame) {
  UdpServerHost host(ServeMode::kReactor);
  RawEchoService echo;
  Result<uint16_t> port = host.ServeStream(&echo, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(*port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  uint8_t bogus[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(send(fd, bogus, 4, MSG_NOSIGNAL), 4);
  // The reactor must hang up on the framing violation: the next read sees
  // EOF, not a reply.
  uint8_t byte;
  EXPECT_EQ(recv(fd, &byte, 1, MSG_WAITALL), 0)
      << "a frame beyond the cap must close the connection";
  close(fd);
  host.StopAll();
}

}  // namespace
}  // namespace hcs
