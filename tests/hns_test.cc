// Unit tests for src/hns: names, the HNS cache, the meta store, FindNSM.

#include <gtest/gtest.h>

#include "src/hns/cache.h"
#include "src/hns/hns.h"
#include "src/hns/meta_store.h"
#include "src/hns/name.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

// --- HnsName --------------------------------------------------------------------

TEST(HnsNameTest, ParseAndFormat) {
  Result<HnsName> name = HnsName::Parse("HRPCBinding-BIND!fiji.cs.washington.edu");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->context, "HRPCBinding-BIND");
  EXPECT_EQ(name->individual, "fiji.cs.washington.edu");
  EXPECT_EQ(name->ToString(), "HRPCBinding-BIND!fiji.cs.washington.edu");
}

TEST(HnsNameTest, IndividualNamesKeepNativeSyntax) {
  // Clearinghouse names contain colons; the HNS does not interpret them.
  Result<HnsName> name = HnsName::Parse("CH!Dorado:CSL:Xerox");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->individual, "Dorado:CSL:Xerox");
  // Even '!' may appear inside the individual part (first '!' splits).
  Result<HnsName> odd = HnsName::Parse("CTX!weird!name");
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(odd->individual, "weird!name");
}

TEST(HnsNameTest, RejectsMalformed) {
  EXPECT_FALSE(HnsName::Parse("no-separator").ok());
  EXPECT_FALSE(HnsName::Parse("!name").ok());
  EXPECT_FALSE(HnsName::Parse("ctx!").ok());
  EXPECT_FALSE(HnsName::Parse("bad ctx!name").ok());  // whitespace in context
}

TEST(HnsNameTest, ContextsCaseInsensitiveIndividualsExact) {
  HnsName a = HnsName::Parse("BIND!Fiji").value();
  HnsName b = HnsName::Parse("bind!Fiji").value();
  HnsName c = HnsName::Parse("BIND!fiji").value();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c) << "individual-name semantics belong to the underlying service";
}

TEST(HnsNameTest, ContextValidation) {
  EXPECT_TRUE(ValidateContextName("HRPCBinding-BIND").ok());
  EXPECT_FALSE(ValidateContextName("").ok());
  EXPECT_FALSE(ValidateContextName(std::string(200, 'a')).ok());
  EXPECT_FALSE(ValidateContextName("has!bang").ok());
  EXPECT_FALSE(ValidateContextName("has space").ok());
}

// --- HnsCache --------------------------------------------------------------------

class HnsCacheTest : public ::testing::Test {
 protected:
  World world_;
};

TEST_F(HnsCacheTest, ModeNoneNeverHits) {
  HnsCache cache(&world_, CacheMode::kNone);
  cache.Put("k", WireValue::OfUint32(1), 60);
  EXPECT_FALSE(cache.Get("k").ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(HnsCacheTest, MarshalledAndDemarshalledReturnEqualValues) {
  WireValue value = RecordBuilder().Str("ns", "UW-BIND").U32("n", 7).Build();
  for (CacheMode mode : {CacheMode::kMarshalled, CacheMode::kDemarshalled}) {
    HnsCache cache(&world_, mode);
    cache.Put("k", value, 60);
    Result<WireValue> got = cache.Get("k");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, value);
  }
}

TEST_F(HnsCacheTest, MarshalledHitsCostMoreThanDemarshalled) {
  WireValue value = RecordBuilder().Str("a", std::string(200, 'x')).Build();
  HnsCache marshalled(&world_, CacheMode::kMarshalled);
  HnsCache demarshalled(&world_, CacheMode::kDemarshalled);
  marshalled.Put("k", value, 60);
  demarshalled.Put("k", value, 60);

  double t0 = world_.clock().NowMs();
  (void)marshalled.Get("k");
  double m = world_.clock().NowMs() - t0;
  t0 = world_.clock().NowMs();
  (void)demarshalled.Get("k");
  double d = world_.clock().NowMs() - t0;
  EXPECT_GT(m, 5 * d) << "the Table 3.2 effect: demarshal-per-hit dominates";
}

TEST_F(HnsCacheTest, TtlExpiryIsHonoured) {
  HnsCache cache(&world_, CacheMode::kDemarshalled);
  cache.Put("k", WireValue::OfUint32(1), 10);
  EXPECT_TRUE(cache.Get("k").ok());
  world_.clock().AdvanceMs(10'000.0 + 1.0);
  EXPECT_FALSE(cache.Get("k").ok());
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u) << "expired entries are reaped on access";
}

TEST_F(HnsCacheTest, StatsTrackHitsAndMisses) {
  HnsCache cache(&world_, CacheMode::kMarshalled);
  (void)cache.Get("absent");
  cache.Put("k", WireValue::OfUint32(1), 60);
  (void)cache.Get("k");
  (void)cache.Get("k");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_NEAR(cache.stats().HitFraction(), 2.0 / 3.0, 1e-12);
}

TEST_F(HnsCacheTest, RemoveAndClear) {
  HnsCache cache(&world_, CacheMode::kDemarshalled);
  cache.Put("a", WireValue::OfUint32(1), 60);
  cache.Put("b", WireValue::OfUint32(2), 60);
  cache.Remove("a");
  EXPECT_FALSE(cache.Get("a").ok());
  EXPECT_TRUE(cache.Get("b").ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(HnsCacheTest, ApproximateBytesRoughlyTracksContent) {
  HnsCache cache(&world_, CacheMode::kMarshalled);
  cache.Put("k", WireValue::OfBlob(Bytes(500, 1)), 60);
  EXPECT_GT(cache.ApproximateBytes(), 500u);
  EXPECT_LT(cache.ApproximateBytes(), 700u);
}

// --- MetaStore (against the live testbed) ------------------------------------------

class MetaStoreTest : public ::testing::Test {
 protected:
  MetaStoreTest() : bed_(), client_(bed_.MakeClient(Arrangement::kAllLinked)) {}

  MetaStore& meta() { return client_.session->local_hns()->meta(); }

  Testbed bed_;
  ClientSetup client_;
};

TEST_F(MetaStoreTest, MappingsResolveRegisteredData) {
  EXPECT_EQ(meta().ContextToNameService(kContextBindBinding).value(), kNsBind);
  EXPECT_EQ(meta().ContextToNameService(kContextCh).value(), kNsCh);
  EXPECT_EQ(meta().NsmNameFor(kNsBind, kQueryClassHrpcBinding).value(), kNsmBindingBind);
  Result<NsmInfo> info = meta().NsmLocation(kNsmBindingBind);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->host, kNsmServerHost);
  EXPECT_EQ(info->query_class, kQueryClassHrpcBinding);
  Result<NameServiceInfo> ns = meta().NameService(kNsBind);
  ASSERT_TRUE(ns.ok());
  EXPECT_EQ(ns->type, "BIND");
}

TEST_F(MetaStoreTest, UnknownEntriesAreNotFound) {
  EXPECT_EQ(meta().ContextToNameService("NoSuchContext").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(meta().NsmNameFor(kNsBind, "NoSuchQueryClass").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(meta().NsmLocation("NoSuchNsm").status().code(), StatusCode::kNotFound);
}

TEST_F(MetaStoreTest, RecordNamingConvention) {
  EXPECT_EQ(MetaStore::ContextRecordName("BIND"), "ctx.bind.hns");
  EXPECT_EQ(MetaStore::NsmMapRecordName("UW-BIND", "HostAddress"),
            "map.hostaddress.uw-bind.hns");
  EXPECT_EQ(MetaStore::NsmLocationRecordName("BindingNSM-BIND"), "loc.bindingnsm-bind.hns");
  EXPECT_EQ(MetaStore::NameServiceRecordName("UW-BIND"), "ns.uw-bind.hns");
}

TEST_F(MetaStoreTest, ReadsAreCachedAndInvalidatedByWrites) {
  (void)meta().ContextToNameService(kContextBind);
  uint64_t lookups = meta().remote_lookups();
  (void)meta().ContextToNameService(kContextBind);
  EXPECT_EQ(meta().remote_lookups(), lookups) << "second read served from cache";

  // Re-registering the context invalidates the cached mapping.
  ASSERT_TRUE(meta().RegisterContext(kContextBind, kNsBind).ok());
  (void)meta().ContextToNameService(kContextBind);
  EXPECT_EQ(meta().remote_lookups(), lookups + 1);
}

TEST_F(MetaStoreTest, UnregisterNsmRemovesBothRecords) {
  ASSERT_TRUE(meta().UnregisterNsm(kNsBind, kQueryClassMailboxInfo).ok());
  EXPECT_EQ(meta().NsmNameFor(kNsBind, kQueryClassMailboxInfo).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(meta().NsmLocation(kNsmMailboxBind).status().code(), StatusCode::kNotFound);
  // Other query classes unaffected.
  EXPECT_TRUE(meta().NsmNameFor(kNsBind, kQueryClassHrpcBinding).ok());
}

TEST_F(MetaStoreTest, RegistrationValidatesInput) {
  EXPECT_EQ(meta().RegisterNameService(NameServiceInfo{}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(meta().RegisterContext("bad context", kNsBind).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(meta().RegisterNsm(NsmInfo{}).code(), StatusCode::kInvalidArgument);
}

TEST_F(MetaStoreTest, PreloadFillsCacheFromZoneTransfer) {
  client_.FlushAll();
  Result<size_t> bytes = meta().Preload();
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  EXPECT_GT(*bytes, 1000u);
  EXPECT_LT(*bytes, 4096u) << "the meta information is small (~2KB in the paper)";

  // Every mapping now hits without remote lookups.
  uint64_t lookups = meta().remote_lookups();
  EXPECT_TRUE(meta().ContextToNameService(kContextBind).ok());
  EXPECT_TRUE(meta().NsmNameFor(kNsCh, kQueryClassHostAddress).ok());
  EXPECT_TRUE(meta().NsmLocation(kNsmHostAddrCh).ok());
  EXPECT_EQ(meta().remote_lookups(), lookups);
}

// --- Hns::FindNsm ---------------------------------------------------------------------

TEST(HnsFindNsmTest, ReturnsFullyResolvedBinding) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kRemoteNsms);
  HnsName name;
  name.context = kContextBindBinding;
  name.individual = kSunServerHost;
  Result<NsmHandle> handle =
      client.session->local_hns()->FindNsm(name, kQueryClassHrpcBinding);
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_EQ(handle->nsm_name, kNsmBindingBind);
  EXPECT_EQ(handle->binding.host, kNsmServerHost);
  EXPECT_NE(handle->binding.address, 0u) << "mapping 3 resolves the NSM host's address";
  EXPECT_NE(handle->binding.port, 0);
}

TEST(HnsFindNsmTest, UnknownContextAndQueryClassFail) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Hns* hns = client.session->local_hns();
  HnsName name;
  name.context = "Hesiod";
  name.individual = "x";
  EXPECT_EQ(hns->FindNsm(name, kQueryClassHostAddress).status().code(),
            StatusCode::kNotFound);
  name.context = kContextBind;
  EXPECT_EQ(hns->FindNsm(name, "FontService").status().code(), StatusCode::kNotFound);
}

TEST(HnsFindNsmTest, LinkNsmRejectsDuplicatesAndEmptyNames) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Hns* hns = client.session->local_hns();
  std::vector<std::shared_ptr<Nsm>> extra = bed.MakeLinkedNsms(kClientHost);
  EXPECT_EQ(hns->LinkNsm(extra.front()).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(hns->HasLinkedNsm(kNsmHostAddrBind));
  EXPECT_FALSE(hns->HasLinkedNsm("NoSuchNSM"));
}

TEST(HnsFindNsmTest, ResolveHostAddressThroughEitherService) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Hns* hns = client.session->local_hns();
  Result<uint32_t> unix_addr = hns->ResolveHostAddress(kContextBind, kSunServerHost);
  ASSERT_TRUE(unix_addr.ok()) << unix_addr.status();
  Result<uint32_t> xerox_addr = hns->ResolveHostAddress(kContextCh, kXeroxServerHost);
  ASSERT_TRUE(xerox_addr.ok()) << xerox_addr.status();
  EXPECT_NE(*unix_addr, *xerox_addr);
  EXPECT_EQ(*unix_addr, bed.world().network().GetHost(kSunServerHost).value().address);
}

}  // namespace
}  // namespace hcs
