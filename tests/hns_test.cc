// Unit tests for src/hns: names, the HNS cache, the meta store, FindNSM.

#include <gtest/gtest.h>

#include "src/common/strings.h"
#include "src/hns/cache.h"
#include "src/hns/hns.h"
#include "src/hns/meta_store.h"
#include "src/hns/name.h"
#include "src/testbed/testbed.h"
#include "src/workload/engine.h"

namespace hcs {
namespace {

// --- HnsName --------------------------------------------------------------------

TEST(HnsNameTest, ParseAndFormat) {
  Result<HnsName> name = HnsName::Parse("HRPCBinding-BIND!fiji.cs.washington.edu");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->context, "HRPCBinding-BIND");
  EXPECT_EQ(name->individual, "fiji.cs.washington.edu");
  EXPECT_EQ(name->ToString(), "HRPCBinding-BIND!fiji.cs.washington.edu");
}

TEST(HnsNameTest, IndividualNamesKeepNativeSyntax) {
  // Clearinghouse names contain colons; the HNS does not interpret them.
  Result<HnsName> name = HnsName::Parse("CH!Dorado:CSL:Xerox");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->individual, "Dorado:CSL:Xerox");
  // Even '!' may appear inside the individual part (first '!' splits).
  Result<HnsName> odd = HnsName::Parse("CTX!weird!name");
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(odd->individual, "weird!name");
}

TEST(HnsNameTest, RejectsMalformed) {
  EXPECT_FALSE(HnsName::Parse("no-separator").ok());
  EXPECT_FALSE(HnsName::Parse("!name").ok());
  EXPECT_FALSE(HnsName::Parse("ctx!").ok());
  EXPECT_FALSE(HnsName::Parse("bad ctx!name").ok());  // whitespace in context
}

TEST(HnsNameTest, ContextsCaseInsensitiveIndividualsExact) {
  HnsName a = HnsName::Parse("BIND!Fiji").value();
  HnsName b = HnsName::Parse("bind!Fiji").value();
  HnsName c = HnsName::Parse("BIND!fiji").value();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c) << "individual-name semantics belong to the underlying service";
}

TEST(HnsNameTest, ContextValidation) {
  EXPECT_TRUE(ValidateContextName("HRPCBinding-BIND").ok());
  EXPECT_FALSE(ValidateContextName("").ok());
  EXPECT_FALSE(ValidateContextName(std::string(200, 'a')).ok());
  EXPECT_FALSE(ValidateContextName("has!bang").ok());
  EXPECT_FALSE(ValidateContextName("has space").ok());
}

// --- HnsCache --------------------------------------------------------------------

class HnsCacheTest : public ::testing::Test {
 protected:
  World world_;
};

TEST_F(HnsCacheTest, ModeNoneNeverHits) {
  HnsCache cache(&world_, CacheMode::kNone);
  cache.Put("k", WireValue::OfUint32(1), 60);
  EXPECT_FALSE(cache.Get("k").ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(HnsCacheTest, MarshalledAndDemarshalledReturnEqualValues) {
  WireValue value = RecordBuilder().Str("ns", "UW-BIND").U32("n", 7).Build();
  for (CacheMode mode : {CacheMode::kMarshalled, CacheMode::kDemarshalled}) {
    HnsCache cache(&world_, mode);
    cache.Put("k", value, 60);
    Result<WireValue> got = cache.Get("k");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, value);
  }
}

TEST_F(HnsCacheTest, MarshalledHitsCostMoreThanDemarshalled) {
  WireValue value = RecordBuilder().Str("a", std::string(200, 'x')).Build();
  HnsCache marshalled(&world_, CacheMode::kMarshalled);
  HnsCache demarshalled(&world_, CacheMode::kDemarshalled);
  marshalled.Put("k", value, 60);
  demarshalled.Put("k", value, 60);

  double t0 = world_.clock().NowMs();
  (void)marshalled.Get("k");  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double m = world_.clock().NowMs() - t0;
  t0 = world_.clock().NowMs();
  (void)demarshalled.Get("k");  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double d = world_.clock().NowMs() - t0;
  EXPECT_GT(m, 5 * d) << "the Table 3.2 effect: demarshal-per-hit dominates";
}

TEST_F(HnsCacheTest, TtlExpiryIsHonoured) {
  HnsCache cache(&world_, CacheMode::kDemarshalled);
  cache.Put("k", WireValue::OfUint32(1), 10);
  EXPECT_TRUE(cache.Get("k").ok());
  world_.clock().AdvanceMs(10'000.0 + 1.0);
  EXPECT_FALSE(cache.Get("k").ok());
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u) << "expired entries are reaped on access";
}

TEST_F(HnsCacheTest, StatsTrackHitsAndMisses) {
  HnsCache cache(&world_, CacheMode::kMarshalled);
  (void)cache.Get("absent");
  cache.Put("k", WireValue::OfUint32(1), 60);
  (void)cache.Get("k");
  (void)cache.Get("k");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_NEAR(cache.stats().HitFraction(), 2.0 / 3.0, 1e-12);
}

TEST_F(HnsCacheTest, RemoveAndClear) {
  HnsCache cache(&world_, CacheMode::kDemarshalled);
  cache.Put("a", WireValue::OfUint32(1), 60);
  cache.Put("b", WireValue::OfUint32(2), 60);
  cache.Remove("a");
  EXPECT_FALSE(cache.Get("a").ok());
  EXPECT_TRUE(cache.Get("b").ok());
  EXPECT_TRUE(cache.CheckInvariants().ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.CheckInvariants().ok());
}

TEST_F(HnsCacheTest, ApproximateBytesRoughlyTracksContent) {
  HnsCache cache(&world_, CacheMode::kMarshalled);
  cache.Put("k", WireValue::OfBlob(Bytes(500, 1)), 60);
  EXPECT_GT(cache.ApproximateBytes(), 500u);
  EXPECT_LT(cache.ApproximateBytes(), 700u);
}

TEST_F(HnsCacheTest, ByteBudgetEvictsInLruOrder) {
  WireValue value = RecordBuilder().Str("blob", std::string(100, 'x')).Build();

  // Size the budget off one real entry so the test is independent of the
  // overhead constant: room for three entries, not four.
  HnsCache probe(&world_, CacheMode::kDemarshalled);
  probe.Put("k1", value, 60);
  size_t per_entry = probe.ApproximateBytes();

  HnsCacheOptions options;
  options.shards = 1;  // all keys in one shard: deterministic LRU order
  options.max_bytes = 3 * per_entry + per_entry / 2;
  HnsCache cache(&world_, CacheMode::kDemarshalled, options);
  cache.Put("k1", value, 60);
  cache.Put("k2", value, 60);
  cache.Put("k3", value, 60);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch k1 so k2 becomes least recently used, then overflow the budget.
  EXPECT_TRUE(cache.Get("k1").ok());
  cache.Put("k4", value, 60);

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_LE(cache.ApproximateBytes(), options.max_bytes);
  EXPECT_FALSE(cache.Get("k2").ok()) << "the LRU entry is the victim";
  EXPECT_TRUE(cache.Get("k1").ok());
  EXPECT_TRUE(cache.Get("k3").ok());
  EXPECT_TRUE(cache.Get("k4").ok());
  EXPECT_TRUE(cache.CheckInvariants().ok()) << "eviction left list/index/bytes out of sync";
}

TEST_F(HnsCacheTest, NegativeEntriesAnswerUntilTheyExpire) {
  HnsCacheOptions options;
  options.negative_ttl_seconds = 5;
  HnsCache cache(&world_, CacheMode::kDemarshalled, options);
  cache.PutNegative("missing-record");

  HnsCache::LookupResult looked = cache.Lookup("missing-record");
  EXPECT_EQ(looked.probe, HnsCache::Probe::kNegativeHit);
  EXPECT_EQ(cache.stats().negative_hits, 1u);
  // Get() reports NotFound, not a plain miss.
  EXPECT_EQ(cache.Get("missing-record").status().code(), StatusCode::kNotFound);

  world_.clock().AdvanceMs(5'000.0 + 1.0);
  EXPECT_EQ(cache.Lookup("missing-record").probe, HnsCache::Probe::kMiss)
      << "an expired negative entry is a plain miss (re-ask upstream)";
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_TRUE(cache.CheckInvariants().ok());
}

TEST_F(HnsCacheTest, GetReportsExpiryForTtlComposition) {
  HnsCache cache(&world_, CacheMode::kDemarshalled);
  cache.Put("short", WireValue::OfUint32(1), 10);
  cache.Put("long", WireValue::OfUint32(2), 600);
  SimTime short_expires = 0;
  SimTime long_expires = 0;
  ASSERT_TRUE(cache.Get("short", &short_expires).ok());
  ASSERT_TRUE(cache.Get("long", &long_expires).ok());
  EXPECT_GT(short_expires, world_.clock().Now());
  EXPECT_LT(short_expires, long_expires)
      << "composition takes the min of the constituent expiries";
}

TEST_F(HnsCacheTest, ShardedCacheAggregatesAcrossShards) {
  HnsCacheOptions options;
  options.shards = 8;
  HnsCache cache(&world_, CacheMode::kDemarshalled, options);
  for (int i = 0; i < 64; ++i) {
    cache.Put(StrFormat("key-%02d", i), WireValue::OfUint32(static_cast<uint32_t>(i)), 60);
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(cache.Get(StrFormat("key-%02d", i)).ok());
  }
  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(cache.stats().inserts, 64u);
  EXPECT_EQ(cache.stats().hits, 64u);
  EXPECT_GT(cache.stats().bytes, 0u);
  EXPECT_TRUE(cache.CheckInvariants().ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.ApproximateBytes(), 0u);
  EXPECT_TRUE(cache.CheckInvariants().ok());
}

TEST_F(HnsCacheTest, CompositeEntriesExpire) {
  CompositeBindingCache cache(&world_);
  CompositeEntry entry;
  entry.context = "Ctx";
  entry.query_class = "QC";
  entry.nsm_name = "SomeNSM";
  entry.ns_name = "SomeNS";
  entry.expires = CacheNow(&world_) + MsToSim(10'000.0);
  cache.Put(entry);

  EXPECT_TRUE(cache.Get("ctx", "qc").has_value()) << "keys are case-insensitive";
  world_.clock().AdvanceMs(10'000.0 + 1.0);
  EXPECT_FALSE(cache.Get("Ctx", "QC").has_value());
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

// --- MetaStore (against the live testbed) ------------------------------------------

class MetaStoreTest : public ::testing::Test {
 protected:
  MetaStoreTest() : bed_(), client_(bed_.MakeClient(Arrangement::kAllLinked)) {}

  MetaStore& meta() { return client_.session->local_hns()->meta(); }

  Testbed bed_;
  ClientSetup client_;
};

TEST_F(MetaStoreTest, MappingsResolveRegisteredData) {
  EXPECT_EQ(meta().ContextToNameService(kContextBindBinding).value(), kNsBind);
  EXPECT_EQ(meta().ContextToNameService(kContextCh).value(), kNsCh);
  EXPECT_EQ(meta().NsmNameFor(kNsBind, kQueryClassHrpcBinding).value(), kNsmBindingBind);
  Result<NsmInfo> info = meta().NsmLocation(kNsmBindingBind);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->host, kNsmServerHost);
  EXPECT_EQ(info->query_class, kQueryClassHrpcBinding);
  Result<NameServiceInfo> ns = meta().NameService(kNsBind);
  ASSERT_TRUE(ns.ok());
  EXPECT_EQ(ns->type, "BIND");
}

TEST_F(MetaStoreTest, UnknownEntriesAreNotFound) {
  EXPECT_EQ(meta().ContextToNameService("NoSuchContext").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(meta().NsmNameFor(kNsBind, "NoSuchQueryClass").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(meta().NsmLocation("NoSuchNsm").status().code(), StatusCode::kNotFound);
}

TEST_F(MetaStoreTest, RecordNamingConvention) {
  EXPECT_EQ(MetaStore::ContextRecordName("BIND"), "ctx.bind.hns");
  EXPECT_EQ(MetaStore::NsmMapRecordName("UW-BIND", "HostAddress"),
            "map.hostaddress.uw-bind.hns");
  EXPECT_EQ(MetaStore::NsmLocationRecordName("BindingNSM-BIND"), "loc.bindingnsm-bind.hns");
  EXPECT_EQ(MetaStore::NameServiceRecordName("UW-BIND"), "ns.uw-bind.hns");
}

TEST_F(MetaStoreTest, ReadsAreCachedAndInvalidatedByWrites) {
  (void)meta().ContextToNameService(kContextBind);
  uint64_t lookups = meta().remote_lookups();
  (void)meta().ContextToNameService(kContextBind);
  EXPECT_EQ(meta().remote_lookups(), lookups) << "second read served from cache";

  // Re-registering the context invalidates the cached mapping.
  ASSERT_TRUE(meta().RegisterContext(kContextBind, kNsBind).ok());
  (void)meta().ContextToNameService(kContextBind);
  EXPECT_EQ(meta().remote_lookups(), lookups + 1);
}

TEST_F(MetaStoreTest, UnregisterNsmRemovesBothRecords) {
  ASSERT_TRUE(meta().UnregisterNsm(kNsBind, kQueryClassMailboxInfo).ok());
  EXPECT_EQ(meta().NsmNameFor(kNsBind, kQueryClassMailboxInfo).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(meta().NsmLocation(kNsmMailboxBind).status().code(), StatusCode::kNotFound);
  // Other query classes unaffected.
  EXPECT_TRUE(meta().NsmNameFor(kNsBind, kQueryClassHrpcBinding).ok());
}

TEST_F(MetaStoreTest, RegistrationValidatesInput) {
  EXPECT_EQ(meta().RegisterNameService(NameServiceInfo{}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(meta().RegisterContext("bad context", kNsBind).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(meta().RegisterNsm(NsmInfo{}).code(), StatusCode::kInvalidArgument);
}

TEST_F(MetaStoreTest, PreloadFillsCacheFromZoneTransfer) {
  client_.FlushAll();
  Result<size_t> bytes = meta().Preload();
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  EXPECT_GT(*bytes, 1000u);
  EXPECT_LT(*bytes, 4096u) << "the meta information is small (~2KB in the paper)";

  // Every mapping now hits without remote lookups.
  uint64_t lookups = meta().remote_lookups();
  EXPECT_TRUE(meta().ContextToNameService(kContextBind).ok());
  EXPECT_TRUE(meta().NsmNameFor(kNsCh, kQueryClassHostAddress).ok());
  EXPECT_TRUE(meta().NsmLocation(kNsmHostAddrCh).ok());
  EXPECT_EQ(meta().remote_lookups(), lookups);
}

// --- Hns::FindNsm ---------------------------------------------------------------------

TEST(HnsFindNsmTest, ReturnsFullyResolvedBinding) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kRemoteNsms);
  HnsName name;
  name.context = kContextBindBinding;
  name.individual = kSunServerHost;
  Result<NsmHandle> handle =
      client.session->local_hns()->FindNsm(name, kQueryClassHrpcBinding);
  ASSERT_TRUE(handle.ok()) << handle.status();
  EXPECT_EQ(handle->nsm_name, kNsmBindingBind);
  EXPECT_EQ(handle->binding.host, kNsmServerHost);
  EXPECT_NE(handle->binding.address, 0u) << "mapping 3 resolves the NSM host's address";
  EXPECT_NE(handle->binding.port, 0);
}

TEST(HnsFindNsmTest, UnknownContextAndQueryClassFail) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Hns* hns = client.session->local_hns();
  HnsName name;
  name.context = "Hesiod";
  name.individual = "x";
  EXPECT_EQ(hns->FindNsm(name, kQueryClassHostAddress).status().code(),
            StatusCode::kNotFound);
  name.context = kContextBind;
  EXPECT_EQ(hns->FindNsm(name, "FontService").status().code(), StatusCode::kNotFound);
}

TEST(HnsFindNsmTest, LinkNsmRejectsDuplicatesAndEmptyNames) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Hns* hns = client.session->local_hns();
  std::vector<std::shared_ptr<Nsm>> extra = bed.MakeLinkedNsms(kClientHost);
  EXPECT_EQ(hns->LinkNsm(extra.front()).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(hns->HasLinkedNsm(kNsmHostAddrBind));
  EXPECT_FALSE(hns->HasLinkedNsm("NoSuchNSM"));
}

TEST(HnsFindNsmTest, ResolveHostAddressThroughEitherService) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Hns* hns = client.session->local_hns();
  Result<uint32_t> unix_addr = hns->ResolveHostAddress(kContextBind, kSunServerHost);
  ASSERT_TRUE(unix_addr.ok()) << unix_addr.status();
  Result<uint32_t> xerox_addr = hns->ResolveHostAddress(kContextCh, kXeroxServerHost);
  ASSERT_TRUE(xerox_addr.ok()) << xerox_addr.status();
  EXPECT_NE(*unix_addr, *xerox_addr);
  EXPECT_EQ(*unix_addr, bed.world().network().GetHost(kSunServerHost).value().address);
}

// --- Composite binding cache through Hns::FindNsm -------------------------------------

class CompositeFindNsmTest : public ::testing::Test {
 protected:
  CompositeFindNsmTest() {
    TestbedOptions options;
    options.hns_composite_cache = true;
    bed_ = std::make_unique<Testbed>(options);
    client_ = bed_->MakeClient(Arrangement::kAllLinked);
  }

  Hns* hns() { return client_.session->local_hns(); }

  Result<NsmHandle> Find(const char* context, const char* query_class) {
    HnsName name;
    name.context = context;
    name.individual = "whoever";
    return hns()->FindNsm(name, query_class);
  }

  std::unique_ptr<Testbed> bed_;
  ClientSetup client_;
};

TEST_F(CompositeFindNsmTest, WarmFindNsmIsExactlyOneProbe) {
  Result<NsmHandle> cold = Find(kContextBindBinding, kQueryClassHrpcBinding);
  ASSERT_TRUE(cold.ok()) << cold.status();

  hns()->cache().ResetStats();
  hns()->composite_cache().ResetStats();
  Result<NsmHandle> warm = Find(kContextBindBinding, kQueryClassHrpcBinding);
  ASSERT_TRUE(warm.ok()) << warm.status();

  EXPECT_EQ(warm->nsm_name, cold->nsm_name);
  EXPECT_EQ(warm->binding, cold->binding);
  EXPECT_EQ(warm->is_linked(), cold->is_linked());
  CacheStats composite = hns()->composite_cache().stats();
  EXPECT_EQ(composite.hits, 1u);
  EXPECT_EQ(composite.Probes(), 1u);
  EXPECT_EQ(hns()->cache().stats().Probes(), 0u)
      << "a composite hit must not touch the record cache";
}

TEST_F(CompositeFindNsmTest, RegisterNsmInvalidatesAffectedEntries) {
  ASSERT_TRUE(Find(kContextBindBinding, kQueryClassHrpcBinding).ok());
  // An unrelated pair stays cached across the registration.
  ASSERT_TRUE(Find(kContextCh, kQueryClassHostAddress).ok());

  NsmInfo moved = bed_->BindingBindInfo();
  moved.port = 999;
  ASSERT_TRUE(hns()->RegisterNsm(moved).ok());
  EXPECT_GE(hns()->composite_cache().stats().evictions, 1u);

  Result<NsmHandle> fresh = Find(kContextBindBinding, kQueryClassHrpcBinding);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_EQ(fresh->binding.port, 999) << "stale composed binding would keep the old port";

  hns()->composite_cache().ResetStats();
  ASSERT_TRUE(Find(kContextCh, kQueryClassHostAddress).ok());
  EXPECT_EQ(hns()->composite_cache().stats().hits, 1u)
      << "entries not composed from the re-registered NSM survive";
}

TEST_F(CompositeFindNsmTest, UnregisterNsmInvalidatesAffectedEntries) {
  ASSERT_TRUE(Find(kContextBindMail, kQueryClassMailboxInfo).ok());
  ASSERT_TRUE(hns()->UnregisterNsm(kNsBind, kQueryClassMailboxInfo).ok());
  // A stale composite hit would succeed here; the truth is NotFound.
  EXPECT_EQ(Find(kContextBindMail, kQueryClassMailboxInfo).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CompositeFindNsmTest, RegisterContextInvalidatesItsEntries) {
  Result<NsmHandle> before = Find(kContextBindBinding, kQueryClassHrpcBinding);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->nsm_name, kNsmBindingBind);

  // Rebind the context to the Clearinghouse name service: the cached
  // composition now designates the wrong NSM entirely.
  ASSERT_TRUE(hns()->RegisterContext(kContextBindBinding, kNsCh).ok());
  Result<NsmHandle> after = Find(kContextBindBinding, kQueryClassHrpcBinding);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->nsm_name, kNsmBindingCh);
}

TEST_F(CompositeFindNsmTest, CompositeTtlCapBoundsEntryLifetime) {
  // A session with a 10-second composite cap under hour-long record TTLs:
  // the cap is the min, so after 11 s the composite entry is gone while the
  // record cache still answers everything.
  SessionOptions options;
  options.hns.meta_server_host = kMetaSecondaryHost;
  options.hns.meta_authority_host = kMetaBindHost;
  options.hns.composite_cache = true;
  options.hns.composite_ttl_cap_seconds = 10;
  HnsSession session(&bed_->world(), kClientHost, &bed_->transport(), options);
  for (std::shared_ptr<Nsm>& nsm : bed_->MakeLinkedNsms(kClientHost)) {
    ASSERT_TRUE(session.LinkNsm(std::move(nsm)).ok());
  }
  Hns* capped = session.local_hns();

  HnsName name;
  name.context = kContextBindBinding;
  name.individual = "whoever";
  ASSERT_TRUE(capped->FindNsm(name, kQueryClassHrpcBinding).ok());

  bed_->world().clock().AdvanceMs(11'000.0);
  uint64_t lookups = capped->meta().remote_lookups();
  capped->composite_cache().ResetStats();
  ASSERT_TRUE(capped->FindNsm(name, kQueryClassHrpcBinding).ok());
  EXPECT_EQ(capped->composite_cache().stats().expirations, 1u);
  EXPECT_EQ(capped->meta().remote_lookups(), lookups)
      << "records outlive the capped composite entry, so re-composition is local";

  // And the re-composed entry serves the next call as a single probe again.
  capped->composite_cache().ResetStats();
  ASSERT_TRUE(capped->FindNsm(name, kQueryClassHrpcBinding).ok());
  EXPECT_EQ(capped->composite_cache().stats().hits, 1u);
}


// --- Cache behavior under injected faults ---------------------------------------------
// The negative-entry and eviction machinery exercised while a seeded
// FaultInjector degrades the meta path, with CheckInvariants after every
// storm (the chaos-test discipline applied to the record cache).

inline constexpr uint64_t kCacheFaultSeed = 0x5eedcafe;

TEST(CacheFaultTest, NegativeEntriesServeThroughInjectedMetaOutage) {
  Testbed bed;
  FaultInjector injector(FaultConfig{kCacheFaultSeed, {}});
  bed.InstallFaultInjector(&injector);
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  MetaStore& meta = client.session->local_hns()->meta();

  // Seed a negative entry while the meta path is healthy.
  EXPECT_EQ(meta.ContextToNameService("NoSuchContext").status().code(),
            StatusCode::kNotFound);
  uint64_t lookups = meta.remote_lookups();

  // Blackhole both meta servers: the cached NotFound keeps answering without
  // touching the (unreachable) network.
  injector.BlackholeEndpoint(kMetaBindHost);
  injector.BlackholeEndpoint(kMetaSecondaryHost);
  EXPECT_EQ(meta.ContextToNameService("NoSuchContext").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(meta.remote_lookups(), lookups) << "answered by the negative entry";
  EXPECT_GE(client.hns_cache->stats().negative_hits, 1u);

  // Past the negative TTL the probe must go upstream again — and now the
  // outage surfaces instead of a stale NotFound.
  bed.world().clock().AdvanceMs(
      (client.hns_cache->options().negative_ttl_seconds + 1) * 1000.0);
  EXPECT_EQ(meta.ContextToNameService("NoSuchContext").status().code(),
            StatusCode::kUnavailable);
  EXPECT_GT(injector.stats().blackholed, 0u);

  Status invariants = client.hns_cache->CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants;
}

TEST(CacheFaultTest, EvictionStormUnderInjectedLossKeepsCacheConsistent) {
  TestbedOptions options;
  options.hns_cache_mode = CacheMode::kDemarshalled;
  options.hns_cache.shards = 1;
  options.hns_cache.max_bytes = 2048;  // far below the storm's working set
  Testbed bed(options);

  FaultInjector injector(FaultConfig{kCacheFaultSeed, {}});
  bed.InstallFaultInjector(&injector);
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  MetaStore& meta = client.session->local_hns()->meta();

  // 20% loss on every endpoint. A registration is several meta writes and
  // restarts wholesale on any drop, so the per-try failure rate is much
  // higher than the per-message rate; the scenario retries at its own level
  // (the sim transport is single-attempt), bounded per call.
  FaultSpec lossy;
  lossy.drop = 0.2;
  injector.SetPlan(FaultPlan{"*", {FaultPhase{0, lossy}}});

  constexpr int kNsms = 40;
  constexpr int kMaxTriesPerCall = 30;
  for (int i = 0; i < kNsms; ++i) {
    NsmInfo info = bed.HostAddrBindInfo();
    info.nsm_name = "EvictNSM-" + std::to_string(i);
    info.query_class = "EvictQC-" + std::to_string(i);

    Status registered = UnavailableError("not attempted");
    for (int t = 0; t < kMaxTriesPerCall && !registered.ok(); ++t) {
      registered = meta.RegisterNsm(info);
    }
    ASSERT_TRUE(registered.ok()) << "nsm " << i << ": " << registered;

    Result<NsmInfo> read_back = UnavailableError("not attempted");
    for (int t = 0; t < kMaxTriesPerCall && !read_back.ok(); ++t) {
      read_back = meta.NsmLocation(info.nsm_name);
    }
    ASSERT_TRUE(read_back.ok()) << "nsm " << i << ": " << read_back.status();
    EXPECT_EQ(read_back->host, info.host);
  }

  CacheStats stats = client.hns_cache->stats();
  EXPECT_GT(stats.evictions, 0u) << "the byte budget never engaged";
  EXPECT_LE(client.hns_cache->ApproximateBytes(), options.hns_cache.max_bytes);
  EXPECT_GT(injector.stats().drops, 0u) << "the loss plan never fired";
  Status invariants = client.hns_cache->CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants;
}

// --- Cache behaviour under skewed load --------------------------------------

// A byte-budgeted record cache under Zipf traffic: the more the popularity
// concentrates (larger s), the more of the working set fits, so the hit rate
// must rise monotonically with the skew at a fixed budget. Driven by the
// workload engine so the traffic is exactly the paper-style FindNSM mix.
TEST(CacheSkewTest, HitRateRisesMonotonicallyWithZipfSkew) {
  const std::vector<double> skews = {0.2, 0.8, 1.4};
  std::vector<double> hit_rates;
  for (double s : skews) {
    TestbedOptions bed_options;
    bed_options.hns_cache.max_bytes = 8 * 1024;  // far below the full working set
    bed_options.hns_cache.shards = 1;
    Testbed bed(bed_options);
    ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);

    WorkloadOptions options;
    options.seed = 0x5eedcafe;
    options.population = 1'500;
    options.contexts = 96;
    options.zipf_s = s;
    options.arrivals_per_second = 5'000;
    options.mean_queries_per_client = 3.0;
    options.mean_think_ms = 100;
    options.name_services = {kNsBind, kNsCh};
    WorkloadEngine engine(&bed.world(), client.session.get(),
                          client.session->local_hns(), options);
    ASSERT_TRUE(engine.Setup().ok());
    WorkloadReport report = engine.Run();
    ASSERT_EQ(report.counters.queries_failed, 0u);
    ASSERT_GT(report.record_cache.Probes(), 0u);
    hit_rates.push_back(report.record_cache.HitFraction());
  }
  for (size_t i = 1; i < hit_rates.size(); ++i) {
    EXPECT_GT(hit_rates[i], hit_rates[i - 1])
        << "hit rate fell when skew rose from s=" << skews[i - 1] << " to s="
        << skews[i];
  }
}

// A cached NotFound must never outlive a Register of the same name: the
// meta store's WriteRecord purges the record's cache entry (negative
// entries included), so a registration becomes visible immediately instead
// of after the negative TTL.
TEST(CacheSkewTest, NegativeCacheEntryNeverOutlivesARegister) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Hns* hns = client.session->local_hns();
  HnsName name = HnsName::Parse("late-ctx!x").value();

  // Miss, then negative hit: the NotFound is being served from the cache.
  EXPECT_EQ(hns->FindNsm(name, kQueryClassHrpcBinding).status().code(),
            StatusCode::kNotFound);
  uint64_t negative_before = client.hns_cache->stats().negative_hits;
  EXPECT_EQ(hns->FindNsm(name, kQueryClassHrpcBinding).status().code(),
            StatusCode::kNotFound);
  EXPECT_GT(client.hns_cache->stats().negative_hits, negative_before)
      << "the second lookup was not answered by the negative cache";

  // Register the context and re-query at the same virtual instant — far
  // inside the negative TTL. The registration must win.
  ASSERT_TRUE(hns->RegisterContext("late-ctx", kNsBind).ok());
  Result<NsmHandle> handle = hns->FindNsm(name, kQueryClassHrpcBinding);
  ASSERT_TRUE(handle.ok())
      << "a stale negative entry outlived the registration: " << handle.status();
  EXPECT_EQ(handle->nsm_name, kNsmBindingBind);
}

}  // namespace
}  // namespace hcs
