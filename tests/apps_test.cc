// Tests for the heterogeneous filing application: the two incompatible file
// services, the FileService NSMs, and the HcsFile Fetch/Store facade.

#include <gtest/gtest.h>

#include "src/apps/file_nsms.h"
#include "src/apps/file_system.h"
#include "src/common/rand.h"
#include "src/common/strings.h"
#include "src/wire/courier.h"
#include "src/wire/xdr.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

class HcsFileTest : public ::testing::Test {
 protected:
  HcsFileTest()
      : client_(bed_.MakeClient(Arrangement::kAllLinked)),
        fs_(client_.session.get(), TestbedCredentials()) {}

  Testbed bed_;
  ClientSetup client_;
  HcsFile fs_;
};

TEST_F(HcsFileTest, FetchFromBothWorldsThroughOneInterface) {
  Result<Bytes> unix_file =
      fs_.Fetch("Files-BIND!fiji.cs.washington.edu:/usr/doc/readme");
  ASSERT_TRUE(unix_file.ok()) << unix_file.status();
  EXPECT_NE(StringFromBytes(*unix_file).find("HCS project"), std::string::npos);

  Result<Bytes> xerox_file = fs_.Fetch("Files-CH!Dorado:CSL:Xerox!<Docs>overview.press");
  ASSERT_TRUE(xerox_file.ok()) << xerox_file.status();
  EXPECT_NE(StringFromBytes(*xerox_file).find("XDE filing"), std::string::npos);
}

TEST_F(HcsFileTest, StoreThenFetchRoundTripsOnBothWorlds) {
  Bytes contents = BytesFromString("stored through the facade");
  ASSERT_TRUE(fs_.Store("Files-BIND!fiji.cs.washington.edu:/tmp/new.txt", contents).ok());
  EXPECT_EQ(fs_.Fetch("Files-BIND!fiji.cs.washington.edu:/tmp/new.txt").value(), contents);
  // It really landed in the native service.
  EXPECT_EQ(bed_.nfs_server()->GetFile("/tmp/new.txt").value(), contents);

  ASSERT_TRUE(fs_.Store("Files-CH!Dorado:CSL:Xerox!<Temp>new.press", contents).ok());
  EXPECT_EQ(fs_.Fetch("Files-CH!Dorado:CSL:Xerox!<Temp>new.press").value(), contents);
  EXPECT_EQ(bed_.xde_server()->GetFile("<Temp>new.press").value(), contents);
}

TEST_F(HcsFileTest, MultiBlockNfsTransfer) {
  // > 3 NFS blocks forces the block loop and the offset arithmetic.
  Rng rng(99);
  Bytes big(3500, 0);
  for (uint8_t& b : big) {
    b = static_cast<uint8_t>(rng.Next());
  }
  ASSERT_TRUE(fs_.Store("Files-BIND!fiji.cs.washington.edu:/tmp/big.bin", big).ok());
  Result<Bytes> fetched = fs_.Fetch("Files-BIND!fiji.cs.washington.edu:/tmp/big.bin");
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_EQ(*fetched, big);
}

TEST_F(HcsFileTest, EmptyFileRoundTrips) {
  ASSERT_TRUE(fs_.Store("Files-BIND!fiji.cs.washington.edu:/tmp/empty", Bytes{}).ok());
  EXPECT_EQ(fs_.Fetch("Files-BIND!fiji.cs.washington.edu:/tmp/empty").value(), Bytes{});
}

TEST_F(HcsFileTest, OversizedXdeStoreRejectedCleanly) {
  Bytes huge(70000, 1);
  EXPECT_EQ(fs_.Store("Files-CH!Dorado:CSL:Xerox!<Temp>huge", huge).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(HcsFileTest, MissingFilesAndBadSyntax) {
  EXPECT_EQ(fs_.Fetch("Files-BIND!fiji.cs.washington.edu:/no/such/file").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(fs_.Fetch("Files-CH!Dorado:CSL:Xerox!<No>file").status().code(),
            StatusCode::kNotFound);
  // Wrong syntax for the world: the NSM owns the rules and rejects.
  EXPECT_EQ(fs_.Fetch("Files-BIND!no-colon-here").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fs_.Fetch("Files-CH!missing-bang").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HcsFileTest, XdeAccessesAreAuthenticated) {
  HcsFile intruder(client_.session.get(), ChCredentials{"Mallory:CSL:Xerox", "nope"});
  EXPECT_EQ(intruder.Fetch("Files-CH!Dorado:CSL:Xerox!<Docs>overview.press").status().code(),
            StatusCode::kPermissionDenied);
  // The Unix side does no per-access authentication (1987 NFS realism).
  EXPECT_TRUE(intruder.Fetch("Files-BIND!fiji.cs.washington.edu:/usr/doc/readme").ok());
}

TEST_F(HcsFileTest, WholeFileVsBlockAccessCostStructure) {
  Bytes contents(4096, 7);
  ASSERT_TRUE(fs_.Store("Files-BIND!fiji.cs.washington.edu:/tmp/cost.bin", contents).ok());
  // Warm caches so only the transfer remains.
  (void)fs_.Fetch("Files-BIND!fiji.cs.washington.edu:/tmp/cost.bin");  // hcs:ignore-status(warm-up and timing probes; only clock deltas are asserted)
  double t0 = bed_.world().clock().NowMs();
  (void)fs_.Fetch("Files-BIND!fiji.cs.washington.edu:/tmp/cost.bin");  // hcs:ignore-status(warm-up and timing probes; only clock deltas are asserted)
  double nfs_ms = bed_.world().clock().NowMs() - t0;

  ASSERT_TRUE(fs_.Store("Files-CH!Dorado:CSL:Xerox!<Temp>cost.press", contents).ok());
  (void)fs_.Fetch("Files-CH!Dorado:CSL:Xerox!<Temp>cost.press");  // hcs:ignore-status(warm-up and timing probes; only clock deltas are asserted)
  t0 = bed_.world().clock().NowMs();
  (void)fs_.Fetch("Files-CH!Dorado:CSL:Xerox!<Temp>cost.press");  // hcs:ignore-status(warm-up and timing probes; only clock deltas are asserted)
  double xde_ms = bed_.world().clock().NowMs() - t0;

  // Four block round trips vs one authenticated whole-file exchange — both
  // must complete, and block access pays per-block network costs.
  EXPECT_GT(nfs_ms, 0.0);
  EXPECT_GT(xde_ms, 0.0);
}

TEST_F(HcsFileTest, FileNsmsWorkThroughRemoteArrangementsToo) {
  ClientSetup remote = bed_.MakeClient(Arrangement::kAgent);
  HcsFile remote_fs(remote.session.get(), TestbedCredentials());
  Result<Bytes> fetched =
      remote_fs.Fetch("Files-BIND!fiji.cs.washington.edu:/usr/doc/readme");
  ASSERT_TRUE(fetched.ok()) << fetched.status();
}

// Direct substrate tests ------------------------------------------------------

TEST(NfsLiteTest, StaleHandleAndBadOffset) {
  World world;
  ASSERT_TRUE(world.network().AddHost("fs", MachineType::kSun, OsType::kUnix).ok());
  ASSERT_TRUE(world.network().AddHost("c", MachineType::kSun, OsType::kUnix).ok());
  NfsLiteServer* server = NfsLiteServer::InstallOn(&world, "fs").value();
  server->PutFile("/a", BytesFromString("abc"));

  SimNetTransport transport(&world);
  RpcClient rpc(&world, "c", &transport);
  HrpcBinding b;
  b.host = "fs";
  b.port = kNfsLitePort;
  b.program = kNfsLiteProgram;
  b.control = ControlKind::kSunRpc;

  XdrEncoder read;
  read.PutUint32(9999);  // stale handle
  read.PutUint32(0);
  read.PutUint32(100);
  EXPECT_EQ(rpc.Call(b, kNfsProcRead, read.Take()).status().code(),
            StatusCode::kInvalidArgument);

  XdrEncoder lookup;
  lookup.PutString("/a");
  // Keep the reply alive: XdrDecoder holds a reference into its argument.
  Bytes lookup_reply = rpc.Call(b, kNfsProcLookup, lookup.Take()).value();
  XdrDecoder dec(lookup_reply);
  uint32_t handle = dec.GetUint32().value();
  XdrEncoder past_end;
  past_end.PutUint32(handle);
  past_end.PutUint32(100);  // beyond the 3-byte file
  past_end.PutUint32(10);
  EXPECT_EQ(rpc.Call(b, kNfsProcRead, past_end.Take()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(XdeFilingTest, EnumerateListsByPrefix) {
  World world;
  ASSERT_TRUE(world.network().AddHost("xde", MachineType::kXeroxD, OsType::kXde).ok());
  ASSERT_TRUE(world.network().AddHost("c", MachineType::kSun, OsType::kUnix).ok());
  XdeFileServer* server = XdeFileServer::InstallOn(&world, "xde").value();
  server->AddAccount("u:d:o", "pw");
  server->PutFile("<Docs>a", Bytes{1});
  server->PutFile("<Docs>b", Bytes{2});
  server->PutFile("<Temp>c", Bytes{3});

  SimNetTransport transport(&world);
  RpcClient rpc(&world, "c", &transport);
  HrpcBinding b;
  b.host = "xde";
  b.port = kXdeFilingPort;
  b.program = kXdeFilingProgram;
  b.control = ControlKind::kCourier;

  CourierEncoder enc;
  enc.PutString("u:d:o");
  enc.PutString("pw");
  enc.PutString("<Docs>");
  Result<Bytes> reply = rpc.Call(b, kXdeProcEnumerate, enc.Take());
  ASSERT_TRUE(reply.ok()) << reply.status();
  CourierDecoder dec(*reply);
  EXPECT_EQ(dec.GetCardinal().value(), 2);
}

}  // namespace
}  // namespace hcs
