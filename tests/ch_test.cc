// Unit tests for src/ch: Clearinghouse names, protocol, server, client.

#include <gtest/gtest.h>

#include "src/ch/client.h"
#include "src/ch/server.h"
#include "src/rpc/ports.h"
#include "src/rpc/transport.h"

namespace hcs {
namespace {

// --- ChName ---------------------------------------------------------------------

TEST(ChNameTest, ParseAndFormat) {
  Result<ChName> name = ChName::Parse("Dorado:CSL:Xerox");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->object, "Dorado");
  EXPECT_EQ(name->domain, "CSL");
  EXPECT_EQ(name->organization, "Xerox");
  EXPECT_EQ(name->ToString(), "Dorado:CSL:Xerox");
  EXPECT_EQ(name->DomainKey(), "csl:xerox");
}

TEST(ChNameTest, RejectsMalformed) {
  EXPECT_FALSE(ChName::Parse("onlyobject").ok());
  EXPECT_FALSE(ChName::Parse("a:b").ok());
  EXPECT_FALSE(ChName::Parse("a:b:c:d").ok());
  EXPECT_FALSE(ChName::Parse(":b:c").ok());
  EXPECT_FALSE(ChName::Parse("a::c").ok());
}

TEST(ChNameTest, ComparisonIsCaseInsensitive) {
  EXPECT_EQ(ChName::Parse("dorado:csl:xerox").value(),
            ChName::Parse("Dorado:CSL:Xerox").value());
  EXPECT_NE(ChName::Parse("dorado:csl:xerox").value(),
            ChName::Parse("dolphin:csl:xerox").value());
}

// --- Protocol round trips ----------------------------------------------------------

TEST(ChProtocolTest, RetrieveItemRoundTrip) {
  ChRetrieveItemRequest req;
  req.credentials = {"HCS:CSL:Xerox", "pw"};
  req.name = ChName::Parse("Dorado:CSL:Xerox").value();
  req.property = kChPropAddress;
  Result<ChRetrieveItemRequest> decoded = ChRetrieveItemRequest::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->credentials.user, "HCS:CSL:Xerox");
  EXPECT_EQ(decoded->name, req.name);
  EXPECT_EQ(decoded->property, kChPropAddress);

  ChRetrieveItemResponse resp;
  resp.distinguished_name = req.name;
  resp.item = RecordBuilder().U32("address", 42).Build();
  Result<ChRetrieveItemResponse> decoded_resp = ChRetrieveItemResponse::Decode(resp.Encode());
  ASSERT_TRUE(decoded_resp.ok());
  EXPECT_EQ(decoded_resp->item, resp.item);
}

// --- Server + client -----------------------------------------------------------------

class ChServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(world_.network().AddHost("client", MachineType::kSun, OsType::kUnix).ok());
    ASSERT_TRUE(
        world_.network().AddHost("Dandelion:CSL:Xerox", MachineType::kXeroxD, OsType::kXde)
            .ok());
    server_ = ChServer::InstallOn(&world_, "Dandelion:CSL:Xerox", ChServerOptions{}).value();
    server_->AddDomain("CSL", "Xerox");
    server_->AddAccount("HCS:CSL:Xerox", "pw");

    transport_ = std::make_unique<SimNetTransport>(&world_);
    rpc_ = std::make_unique<RpcClient>(&world_, "client", transport_.get());
    client_ = std::make_unique<ChClient>(rpc_.get(), "Dandelion:CSL:Xerox",
                                         ChCredentials{"HCS:CSL:Xerox", "pw"});
  }

  ChName Dorado() { return ChName::Parse("Dorado:CSL:Xerox").value(); }

  World world_;
  ChServer* server_ = nullptr;
  std::unique_ptr<SimNetTransport> transport_;
  std::unique_ptr<RpcClient> rpc_;
  std::unique_ptr<ChClient> client_;
};

TEST_F(ChServerTest, AddRetrieveDeleteItem) {
  WireValue item = RecordBuilder().U32("address", 7).Build();
  ASSERT_TRUE(client_->AddItem(Dorado(), kChPropAddress, item).ok());
  EXPECT_EQ(server_->item_count(), 1u);

  Result<ChRetrieveItemResponse> got = client_->RetrieveItem(Dorado(), kChPropAddress);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->item, item);
  EXPECT_EQ(got->distinguished_name, Dorado());

  ASSERT_TRUE(client_->DeleteItem(Dorado(), kChPropAddress).ok());
  EXPECT_EQ(client_->RetrieveItem(Dorado(), kChPropAddress).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client_->DeleteItem(Dorado(), kChPropAddress).code(), StatusCode::kNotFound);
}

TEST_F(ChServerTest, MissingDomainObjectAndProperty) {
  WireValue item = RecordBuilder().U32("address", 7).Build();
  // Unknown domain.
  EXPECT_EQ(client_->AddItem(ChName::Parse("X:Nowhere:Xerox").value(), 1, item).code(),
            StatusCode::kNotFound);
  // Unknown object.
  EXPECT_EQ(client_->RetrieveItem(Dorado(), kChPropAddress).status().code(),
            StatusCode::kNotFound);
  // Known object, unknown property.
  ASSERT_TRUE(client_->AddItem(Dorado(), kChPropAddress, item).ok());
  EXPECT_EQ(client_->RetrieveItem(Dorado(), kChPropMailboxes).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ChServerTest, AuthenticationRequiredOnEveryAccess) {
  ChClient intruder(rpc_.get(), "Dandelion:CSL:Xerox",
                    ChCredentials{"HCS:CSL:Xerox", "wrong"});
  EXPECT_EQ(intruder.RetrieveItem(Dorado(), kChPropAddress).status().code(),
            StatusCode::kPermissionDenied);
  ChClient stranger(rpc_.get(), "Dandelion:CSL:Xerox",
                    ChCredentials{"Nobody:CSL:Xerox", "pw"});
  EXPECT_EQ(stranger
                .AddItem(Dorado(), kChPropAddress, RecordBuilder().U32("address", 1).Build())
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ChServerTest, AuthenticationAndDiskMakeAccessesExpensive) {
  WireValue item = RecordBuilder().U32("address", 7).Build();
  ASSERT_TRUE(client_->AddItem(Dorado(), kChPropAddress, item).ok());
  double t0 = world_.clock().NowMs();
  ASSERT_TRUE(client_->RetrieveItem(Dorado(), kChPropAddress).ok());
  double elapsed = world_.clock().NowMs() - t0;
  const CostModel& costs = world_.costs();
  EXPECT_GE(elapsed, costs.ch_auth_ms + costs.ch_disk_ms);
}

TEST_F(ChServerTest, AliasesResolveToDistinguishedName) {
  WireValue item = RecordBuilder().U32("address", 9).Build();
  ASSERT_TRUE(client_->AddItem(Dorado(), kChPropAddress, item).ok());
  ChName alias = ChName::Parse("PrintHost:CSL:Xerox").value();
  ASSERT_TRUE(server_->AddAlias(alias, Dorado()).ok());

  Result<ChRetrieveItemResponse> got = client_->RetrieveItem(alias, kChPropAddress);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->distinguished_name, Dorado());
  EXPECT_EQ(got->item, item);
}

TEST_F(ChServerTest, ListObjectsEnumeratesDomain) {
  WireValue item = RecordBuilder().U32("address", 1).Build();
  ASSERT_TRUE(client_->AddItem(Dorado(), kChPropAddress, item).ok());
  ASSERT_TRUE(
      client_->AddItem(ChName::Parse("Dolphin:CSL:Xerox").value(), kChPropAddress, item).ok());

  Result<std::vector<std::string>> objects = client_->ListObjects("CSL", "Xerox");
  ASSERT_TRUE(objects.ok()) << objects.status();
  EXPECT_EQ(objects->size(), 2u);
  EXPECT_FALSE(client_->ListObjects("Nowhere", "Xerox").ok());
}

TEST_F(ChServerTest, WritesPropagateToReplicasAndClientsFailOver) {
  // A replica Clearinghouse on a second D-machine.
  ASSERT_TRUE(
      world_.network().AddHost("Daisy:CSL:Xerox", MachineType::kXeroxD, OsType::kXde).ok());
  ChServer* replica = ChServer::InstallOn(&world_, "Daisy:CSL:Xerox", ChServerOptions{}).value();
  replica->AddDomain("CSL", "Xerox");
  replica->AddAccount("HCS:CSL:Xerox", "pw");
  server_->AddReplicaTarget("Daisy:CSL:Xerox");

  // A write through the primary lands on both.
  WireValue item = RecordBuilder().U32("address", 11).Build();
  ASSERT_TRUE(client_->AddItem(Dorado(), kChPropAddress, item).ok());
  EXPECT_EQ(server_->item_count(), 1u);
  EXPECT_EQ(replica->item_count(), 1u);

  // The primary dies; a replica-aware client keeps reading.
  world_.UnregisterService("Dandelion:CSL:Xerox", kClearinghousePort);
  ChClient failover(rpc_.get(),
                    std::vector<std::string>{"Dandelion:CSL:Xerox", "Daisy:CSL:Xerox"},
                    ChCredentials{"HCS:CSL:Xerox", "pw"});
  Result<ChRetrieveItemResponse> got = failover.RetrieveItem(Dorado(), kChPropAddress);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->item, item);

  // A single-host client sees the outage.
  EXPECT_EQ(client_->RetrieveItem(Dorado(), kChPropAddress).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(ChServerTest, DownReplicaDoesNotBlockPrimaryWrites) {
  server_->AddReplicaTarget("Ghost:CSL:Xerox");  // never installed
  ASSERT_TRUE(
      world_.network().AddHost("Ghost:CSL:Xerox", MachineType::kXeroxD, OsType::kXde).ok());
  WireValue item = RecordBuilder().U32("address", 5).Build();
  EXPECT_TRUE(client_->AddItem(Dorado(), kChPropAddress, item).ok())
      << "best-effort propagation must not fail the client's write";
}

TEST_F(ChServerTest, CourierFramingCarriesErrorsAsAborts) {
  // An application error from the Clearinghouse travels back through the
  // Courier ABORT message and reconstructs the status.
  Result<ChRetrieveItemResponse> r =
      client_->RetrieveItem(ChName::Parse("Ghost:CSL:Xerox").value(), kChPropAddress);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(r.status().message().empty());
}

}  // namespace
}  // namespace hcs
