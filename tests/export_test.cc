// Tests for Export (native publication) and the query-class schema
// registry.

#include <gtest/gtest.h>

#include "src/apps/export.h"
#include "src/hns/import.h"
#include "src/hns/query_class.h"
#include "src/testbed/testbed.h"
#include "src/wire/xdr.h"

namespace hcs {
namespace {

// --- Export ----------------------------------------------------------------

class ExportTest : public ::testing::Test {
 protected:
  ExportTest()
      : client_(bed_.MakeClient(Arrangement::kAllLinked)),
        rpc_(&bed_.world(), kClientHost, &bed_.transport()) {}

  Testbed bed_;
  ClientSetup client_;
  RpcClient rpc_;
};

TEST_F(ExportTest, SunServiceExportsThenImportsEverywhere) {
  // A brand-new service comes up on tahiti and exports itself natively.
  auto server = std::make_unique<RpcServer>(ControlKind::kSunRpc, "CalendarService");
  server->RegisterProcedure(510001, 1, [](const Bytes& args) -> Result<Bytes> {
    return args;
  });
  RpcServer* raw = bed_.world().OwnService(std::move(server));

  BindPublisher publisher(bed_.public_bind(), &rpc_);
  ASSERT_TRUE(ExportService(&bed_.world(), &publisher, kClientHost, "CalendarService",
                            510001, 1, 4000, raw)
                  .ok());

  // With *no* HNS administration, any client can now import it: the binding
  // NSM reads the native data.
  Importer importer(client_.session.get());
  Result<HrpcBinding> binding = importer.Import(
      "CalendarService", std::string(kContextBindBinding) + "!" + kClientHost);
  ASSERT_TRUE(binding.ok()) << binding.status();
  EXPECT_EQ(binding->port, 4000);
  EXPECT_EQ(binding->program, 510001u);

  // And call it.
  Result<Bytes> reply = rpc_.Call(*binding, 1, Bytes{1, 2, 3});
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, (Bytes{1, 2, 3}));
}

TEST_F(ExportTest, WithdrawMakesImportsFail) {
  auto server = std::make_unique<RpcServer>(ControlKind::kSunRpc, "Transient");
  RpcServer* raw = bed_.world().OwnService(std::move(server));
  BindPublisher publisher(bed_.public_bind(), &rpc_);
  ASSERT_TRUE(ExportService(&bed_.world(), &publisher, kClientHost, "Transient", 510002, 1,
                            4001, raw)
                  .ok());
  ASSERT_TRUE(publisher.Withdraw(kClientHost, "Transient").ok());
  EXPECT_EQ(publisher.Withdraw(kClientHost, "Transient").code(), StatusCode::kNotFound);

  ClientSetup fresh = bed_.MakeClient(Arrangement::kAllLinked);
  Importer importer(fresh.session.get());
  EXPECT_EQ(importer
                .Import("Transient", std::string(kContextBindBinding) + "!" + kClientHost)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ExportTest, PortCollisionRollsBackThePublication) {
  auto server = std::make_unique<RpcServer>(ControlKind::kSunRpc, "Clash");
  RpcServer* raw = bed_.world().OwnService(std::move(server));
  BindPublisher publisher(bed_.public_bind(), &rpc_);
  // kDesiredServicePort on fiji is taken by DesiredService.
  EXPECT_EQ(ExportService(&bed_.world(), &publisher, kSunServerHost, "Clash", 510003, 1,
                          kDesiredServicePort, raw)
                .code(),
            StatusCode::kAlreadyExists);
  // No descriptor was left behind.
  Zone* zone = bed_.public_bind()->FindZone(kSunServerHost);
  Result<std::vector<ResourceRecord>> records =
      zone->Lookup(SunServiceRecordName(kSunServerHost, "Clash"), RrType::kWks);
  EXPECT_FALSE(records.ok() && !records->empty());
}

TEST_F(ExportTest, CourierServiceExportsThroughTheClearinghouse) {
  auto server = std::make_unique<RpcServer>(ControlKind::kCourier, "ScanService");
  server->RegisterProcedure(510010, 1,
                            [](const Bytes& args) -> Result<Bytes> { return args; });
  RpcServer* raw = bed_.world().OwnService(std::move(server));

  ChClient ch_client(&rpc_, kChServerHost, TestbedCredentials());
  ChPublisher publisher(&ch_client);
  ASSERT_TRUE(ExportService(&bed_.world(), &publisher, kXeroxServerHost, "ScanService",
                            510010, 1, 3001, raw)
                  .ok());

  Importer importer(client_.session.get());
  Result<HrpcBinding> binding = importer.Import(
      "ScanService", std::string(kContextChBinding) + "!" + kXeroxServerHost);
  ASSERT_TRUE(binding.ok()) << binding.status();
  EXPECT_EQ(binding->port, 3001);
  EXPECT_EQ(binding->control, ControlKind::kCourier);

  // The pre-existing PrintService entry survived the merge.
  Result<HrpcBinding> old_binding = importer.Import(
      kPrintService, std::string(kContextChBinding) + "!" + kXeroxServerHost);
  EXPECT_TRUE(old_binding.ok()) << old_binding.status();
}

// --- Query-class schemas -------------------------------------------------------

TEST(QueryClassRegistryTest, BuiltinSchemasAcceptRealResults) {
  QueryClassRegistry registry = QueryClassRegistry::WithBuiltinSchemas();
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  WireValue no_args = WireValue::OfRecord({});

  struct Case {
    const char* context;
    QueryClass qc;
    WireValue args;
  };
  const Case cases[] = {
      {kContextBind, kQueryClassHostAddress, no_args},
      {kContextBindMail, kQueryClassMailboxInfo, no_args},
      {kContextBindBinding, kQueryClassHrpcBinding,
       RecordBuilder().Str("service", kDesiredService).Build()},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.qc);
    HnsName name;
    name.context = c.context;
    name.individual = c.qc == kQueryClassMailboxInfo ? "cs.washington.edu" : kSunServerHost;
    Result<WireValue> result = client.session->Query(name, c.qc, c.args);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(registry.ValidateResult(c.qc, *result).ok());
  }
}

TEST(QueryClassRegistryTest, RejectsMalformedResults) {
  QueryClassRegistry registry = QueryClassRegistry::WithBuiltinSchemas();
  // Missing field.
  EXPECT_EQ(registry
                .ValidateResult(kQueryClassHostAddress,
                                RecordBuilder().U32("address", 1).Build())
                .code(),
            StatusCode::kInvalidArgument);
  // Mistyped field.
  EXPECT_EQ(registry
                .ValidateResult(kQueryClassHostAddress, RecordBuilder()
                                                            .Str("address", "not-a-number")
                                                            .Str("host", "h")
                                                            .Build())
                .code(),
            StatusCode::kInvalidArgument);
  // Extra fields are fine (schemas evolve additively).
  EXPECT_TRUE(registry
                  .ValidateResult(kQueryClassHostAddress, RecordBuilder()
                                                              .U32("address", 1)
                                                              .Str("host", "h")
                                                              .Str("extra", "ok")
                                                              .Build())
                  .ok());
}

TEST(QueryClassRegistryTest, NewQueryClassesRegisterAtRuntime) {
  QueryClassRegistry registry;
  EXPECT_FALSE(registry.HasSchema("PrinterInfo"));
  // No schema: everything passes (opt-in).
  EXPECT_TRUE(registry.ValidateResult("PrinterInfo", WireValue::OfUint32(1)).ok());

  ASSERT_TRUE(registry
                  .RegisterSchema("PrinterInfo", R"(
message PrinterInfo {
  queue: string;
  pages_per_minute: u32;
}
)")
                  .ok());
  EXPECT_TRUE(registry.HasSchema("PrinterInfo"));
  EXPECT_TRUE(registry
                  .ValidateResult("PrinterInfo", RecordBuilder()
                                                     .Str("queue", "lw-basement")
                                                     .U32("pages_per_minute", 8)
                                                     .Build())
                  .ok());
  EXPECT_FALSE(
      registry.ValidateResult("PrinterInfo", RecordBuilder().Str("queue", "x").Build()).ok());
  // Bad IDL is rejected at registration.
  EXPECT_FALSE(registry.RegisterSchema("Broken", "message {").ok());
  EXPECT_FALSE(registry.RegisterSchema("TwoMessages", R"(
message A {
  x: u32;
}
message B {
  y: u32;
}
)")
                   .ok());
}

}  // namespace
}  // namespace hcs
