// Mutation robustness: every decoder in the tree must turn arbitrary or
// corrupted bytes into a clean Status — never a crash, hang, or silent
// misparse that round-trips differently. Deterministic pseudo-fuzzing with
// seeded RNG (parameterized over seeds so the corpus is broad but
// reproducible).

#include <gtest/gtest.h>

#include <cstring>

#include "src/bindns/protocol.h"
#include "src/ch/protocol.h"
#include "src/common/arena.h"
#include "src/common/rand.h"
#include "src/hns/wire_protocol.h"
#include "src/rpc/binding.h"
#include "src/rpc/control.h"
#include "src/testbed/testbed.h"
#include "src/wire/value.h"

namespace hcs {
namespace {

Bytes RandomBytes(Rng* rng, size_t max_len) {
  Bytes out(rng->Uniform(max_len + 1), 0);
  for (uint8_t& b : out) {
    b = static_cast<uint8_t>(rng->Next());
  }
  return out;
}

// Applies one of: truncate, extend, flip bytes.
Bytes Mutate(Rng* rng, Bytes input) {
  if (input.empty()) {
    return input;
  }
  switch (rng->Uniform(3)) {
    case 0:
      input.resize(rng->Uniform(input.size()));
      break;
    case 1: {
      Bytes extra = RandomBytes(rng, 8);
      input.insert(input.end(), extra.begin(), extra.end());
      break;
    }
    default:
      for (uint64_t i = 0, n = 1 + rng->Uniform(4); i < n; ++i) {
        input[rng->Uniform(input.size())] ^= static_cast<uint8_t>(1 + rng->Uniform(255));
      }
      break;
  }
  return input;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    Bytes junk = RandomBytes(&rng, 200);
    (void)WireValue::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)HrpcBinding::FromWire(WireValue::OfBlob(junk));  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)BindQueryRequest::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)BindQueryResponse::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)BindUpdateRequest::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)BindAxfrResponse::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)ChRetrieveItemRequest::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)ChRetrieveItemResponse::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)ChListObjectsResponse::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)NsmQueryRequest::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)FindNsmRequest::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)FindNsmResponse::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    (void)AgentQueryRequest::Decode(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    for (ControlKind kind :
         {ControlKind::kSunRpc, ControlKind::kCourier, ControlKind::kRaw}) {
      const ControlProtocol& control = GetControlProtocol(kind);
      (void)control.DecodeCall(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
      (void)control.DecodeReply(junk);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    }
  }
}

TEST_P(FuzzTest, ViewDecodersOverPoisonedArena) {
  // The zero-copy decoders (DecodeCallView and the Get*View primitives
  // underneath) run against junk landed in EXACTLY-sized arena
  // allocations, with the debug arena's poison surrounding each one: a
  // decoder that walks one byte past the frame hits poisoned memory and
  // the sanitizer legs of check.sh fail loudly instead of reading whatever
  // the previous frame left behind. Release builds run the same loop as a
  // plain crash-freedom probe.
  Rng rng(GetParam() * 173);
  Arena arena(4096);
  ScopedArenaViewBinding binding(&arena);
  for (int i = 0; i < 300; ++i) {
    arena.Reset();
    Bytes junk = RandomBytes(&rng, 200);
    uint8_t* frame = arena.Allocate(junk.empty() ? 1 : junk.size());
    if (!junk.empty()) {
      std::memcpy(frame, junk.data(), junk.size());
    }
    for (ControlKind kind :
         {ControlKind::kSunRpc, ControlKind::kCourier, ControlKind::kRaw}) {
      const ControlProtocol& control = GetControlProtocol(kind);
      Result<RpcCallView> call = control.DecodeCallView(frame, junk.size());
      if (call.ok()) {
        // A surviving parse hands out a view into the arena slab; touching
        // every byte of it proves the view lies inside the frame.
        Bytes copy = call->args.ToBytes();
        EXPECT_LE(copy.size(), junk.size());
      }
    }
  }
}

TEST_P(FuzzTest, MutatedValidMessagesFailCleanlyOrParse) {
  Rng rng(GetParam() * 31);

  RpcCall call;
  call.xid = 42;
  call.program = 100003;
  call.version = 2;
  call.procedure = 6;
  call.args = RandomBytes(&rng, 64);

  for (int i = 0; i < 300; ++i) {
    ControlKind kind = static_cast<ControlKind>(rng.Uniform(3));
    const ControlProtocol& control = GetControlProtocol(kind);
    Bytes mutated = Mutate(&rng, control.EncodeCall(call));
    Result<RpcCall> decoded = control.DecodeCall(mutated);
    if (decoded.ok()) {
      // A surviving parse must re-encode without crashing.
      (void)control.EncodeCall(*decoded);
    }
  }
}

TEST_P(FuzzTest, MutatedMetaRecordsFailCleanly) {
  Rng rng(GetParam() * 97);
  NsmInfo info;
  info.nsm_name = "BindingNSM-BIND";
  info.query_class = "HRPCBinding";
  info.ns_name = "UW-BIND";
  info.host = "yakima.cs.washington.edu";
  info.host_context = "BIND";
  info.program = 400100;
  info.port = 711;
  Bytes valid = info.ToWire().Encode();

  for (int i = 0; i < 300; ++i) {
    Bytes mutated = Mutate(&rng, valid);
    Result<WireValue> value = WireValue::Decode(mutated);
    if (value.ok()) {
      (void)NsmInfo::FromWire(*value);  // hcs:ignore-status(fuzz probe; only crash-freedom is asserted)
    }
  }
}

TEST_P(FuzzTest, LiveServersSurviveGarbageTraffic) {
  Testbed bed;
  Rng rng(GetParam() * 131);
  struct Target {
    const char* host;
    uint16_t port;
  };
  const Target targets[] = {
      {kPublicBindHost, 53}, {kMetaBindHost, 53},   {kChServerHost, 5},
      {kSunServerHost, 111}, {kHnsServerHost, 700}, {kNsmServerHost, 711},
  };
  for (int i = 0; i < 120; ++i) {
    const Target& target = targets[rng.Uniform(std::size(targets))];
    Bytes junk = RandomBytes(&rng, 128);
    (void)bed.world().RoundTrip(kClientHost, target.host, target.port, junk);
  }
  // After the garbage storm, normal service continues.
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  WireValue no_args = WireValue::OfRecord({});
  HnsName name = HnsName::Parse("BIND!fiji.cs.washington.edu").value();
  EXPECT_TRUE(client.session->Query(name, kQueryClassHostAddress, no_args).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 7, 42, 1234, 99991));

}  // namespace
}  // namespace hcs
