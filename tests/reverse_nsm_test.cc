// Tests for the HostName (reverse lookup) query class: cheap PTR lookups on
// the BIND side, authenticated domain sweeps on the Clearinghouse side,
// identical interfaces to the client.

#include <gtest/gtest.h>

#include "src/bindns/master_file.h"
#include "src/common/strings.h"
#include "src/nsm/reverse_nsms.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

TEST(ReverseNameTest, RecordNamingFollowsInAddrArpa) {
  EXPECT_EQ(ReverseRecordName(0x80950104), "4.1.149.128.in-addr.arpa");
  ResourceRecord rr = MakePtrRecord(0x80950104, "fiji.cs.washington.edu");
  EXPECT_EQ(rr.type, RrType::kPtr);
  EXPECT_EQ(rr.TextRdata().value(), "fiji.cs.washington.edu");
}

class ReverseNsmTest : public ::testing::Test {
 protected:
  ReverseNsmTest() : client_(bed_.MakeClient(Arrangement::kAllLinked)) {}

  Result<WireValue> Lookup(const char* context, uint32_t address) {
    HnsName name;
    name.context = context;
    name.individual = FormatAddress(address);
    return client_.session->Query(name, kQueryClassHostName, WireValue::OfRecord({}));
  }

  Testbed bed_;
  ClientSetup client_;
};

TEST_F(ReverseNsmTest, BindSideResolvesThroughPtrRecords) {
  HostInfo fiji = bed_.world().network().GetHost(kSunServerHost).value();
  Result<WireValue> result = Lookup(kContextBind, fiji.address);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->StringField("host").value(), kSunServerHost);
  EXPECT_EQ(result->Uint32Field("address").value(), fiji.address);
}

TEST_F(ReverseNsmTest, ChSideResolvesByDomainSweep) {
  HostInfo dorado = bed_.world().network().GetHost(kXeroxServerHost).value();
  Result<WireValue> result = Lookup(kContextCh, dorado.address);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->StringField("host").value(), kXeroxServerHost);
}

TEST_F(ReverseNsmTest, ForwardAndReverseAreConsistentAcrossAllHosts) {
  // address(host(a)) == a for every department machine.
  WireValue no_args = WireValue::OfRecord({});
  for (const HostInfo& host : bed_.world().network().hosts()) {
    if (!EndsWith(AsciiToLower(host.name), ".cs.washington.edu")) {
      continue;
    }
    Result<WireValue> reverse = Lookup(kContextBind, host.address);
    ASSERT_TRUE(reverse.ok()) << host.name << ": " << reverse.status();
    HnsName forward_name;
    forward_name.context = kContextBind;
    forward_name.individual = reverse->StringField("host").value();
    Result<WireValue> forward =
        client_.session->Query(forward_name, kQueryClassHostAddress, no_args);
    ASSERT_TRUE(forward.ok()) << forward.status();
    EXPECT_EQ(forward->Uint32Field("address").value(), host.address) << host.name;
  }
}

TEST_F(ReverseNsmTest, UnknownAddressesAndBadSyntax) {
  EXPECT_EQ(Lookup(kContextBind, 0x0a0a0a0a).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(Lookup(kContextCh, 0x0a0a0a0a).status().code(), StatusCode::kNotFound);
  HnsName bad;
  bad.context = kContextBind;
  bad.individual = "not-an-address";
  EXPECT_EQ(client_.session->Query(bad, kQueryClassHostName, WireValue::OfRecord({}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ReverseNsmTest, ChSweepIsFarCostlierThanBindPtrLookup) {
  HostInfo fiji = bed_.world().network().GetHost(kSunServerHost).value();
  HostInfo dorado = bed_.world().network().GetHost(kXeroxServerHost).value();
  // Warm the meta path for both so only the NSM work differs.
  (void)Lookup(kContextBind, fiji.address);  // hcs:ignore-status(warm-up; only the later timed lookups are asserted)
  (void)Lookup(kContextCh, dorado.address);  // hcs:ignore-status(warm-up; only the later timed lookups are asserted)
  // Fresh addresses (flush NSM caches to force the underlying work).
  client_.FlushNsmCaches();

  double t0 = bed_.world().clock().NowMs();
  ASSERT_TRUE(Lookup(kContextBind, fiji.address).ok());
  double bind_ms = bed_.world().clock().NowMs() - t0;
  t0 = bed_.world().clock().NowMs();
  ASSERT_TRUE(Lookup(kContextCh, dorado.address).ok());
  double ch_ms = bed_.world().clock().NowMs() - t0;

  EXPECT_GT(ch_ms, 2 * bind_ms)
      << "no reverse index: the CH pays authenticated sweeps; BIND pays one PTR lookup";
}

TEST_F(ReverseNsmTest, SweepResultIsCachedLikeAnyOther) {
  HostInfo dorado = bed_.world().network().GetHost(kXeroxServerHost).value();
  ASSERT_TRUE(Lookup(kContextCh, dorado.address).ok());
  bed_.world().stats().Clear();
  ASSERT_TRUE(Lookup(kContextCh, dorado.address).ok());
  EXPECT_EQ(bed_.world().stats().total_messages, 0u);
}

}  // namespace
}  // namespace hcs
