// Seeded chaos scenarios over the real transport stack. Every probabilistic
// decision comes from a FaultInjector keyed by (seed, endpoint, sequence),
// so each scenario prints its seed and a failing run replays byte-identically
// with HCS_CHAOS_SEED=<seed>. Scenarios assert liveness (calls complete with
// clean Statuses, never hangs or crashes) plus the cross-cutting invariants:
// retries never exceed the transport budget (RetryPolicy::MaxAttempts),
// replies match their requests (trace ids), no composite binding is served
// past its min-constituent TTL, and cache structures stay internally
// consistent (CheckInvariants) after every fault schedule.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/bindns/protocol.h"
#include "src/common/strings.h"
#include "src/bindns/record.h"
#include "src/hns/cache.h"
#include "src/hns/meta_store.h"
#include "src/hns/name.h"
#include "src/rpc/client.h"
#include "src/rpc/context.h"
#include "src/rpc/fault.h"
#include "src/rpc/ports.h"
#include "src/rpc/server.h"
#include "src/rpc/stream_transport.h"
#include "src/rpc/udp_transport.h"
#include "src/testbed/testbed.h"
#include "src/wire/value.h"

namespace hcs {
namespace {

// The run's seed: HCS_CHAOS_SEED wins (how a failing run is replayed),
// else a fixed default so CI is deterministic.
uint64_t ChaosSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("HCS_CHAOS_SEED");
    if (env != nullptr && *env != '\0') {
      return static_cast<uint64_t>(std::strtoull(env, nullptr, 0));
    }
    return static_cast<uint64_t>(0x5eedc0de);
  }();
  return seed;
}

uint64_t AnnounceSeed(const char* scenario) {
  uint64_t seed = ChaosSeed();
  std::cout << "[chaos] " << scenario << " seed=" << seed
            << " (replay with HCS_CHAOS_SEED=" << seed << ")" << std::endl;
  return seed;
}

// One line per scenario with the counters EXPERIMENTS.md tabulates.
void ReportStats(const char* scenario, const FaultStats& stats, int retries = -1,
                 int shed = -1) {
  std::cout << "[chaos] " << scenario << " stats: decisions=" << stats.decisions
            << " drops=" << stats.drops << " dups=" << stats.duplicates
            << " reorders=" << stats.reorders << " corruptions=" << stats.corruptions
            << " delays=" << stats.delays << " blackholed=" << stats.blackholed
            << " server_drops=" << stats.server_drops;
  if (retries >= 0) {
    std::cout << " retries=" << retries;
  }
  if (shed >= 0) {
    std::cout << " shed=" << shed;
  }
  std::cout << std::endl;
}

// Installs the process-global injector for the scenario's lifetime; the
// serving runtimes consult it for inbound traffic.
class ScopedGlobalInjector {
 public:
  explicit ScopedGlobalInjector(FaultInjector* injector) {
    InstallGlobalFaultInjector(injector);
  }
  ~ScopedGlobalInjector() { InstallGlobalFaultInjector(nullptr); }
};

HrpcBinding UdpBinding(uint16_t port, uint32_t program, ControlKind control) {
  HrpcBinding b;
  b.service_name = "chaos-test";
  b.host = "localhost";
  b.port = port;
  b.program = program;
  b.version = 2;
  b.control = control;
  b.transport = TransportKind::kUdp;
  return b;
}

FaultPlan OnePhasePlan(std::string endpoint, FaultSpec spec) {
  FaultPlan plan;
  plan.endpoint = std::move(endpoint);
  plan.phases.push_back(FaultPhase{0, spec});
  return plan;
}

HnsName SunName() {
  return HnsName::Parse(std::string(kContextBindBinding) + "!" + kSunServerHost).value();
}

std::string ServeModeName(const ::testing::TestParamInfo<ServeMode>& info) {
  return info.param == ServeMode::kThreadPerEndpoint ? "ThreadPerEndpoint" : "Reactor";
}

// --- Injector mechanics ----------------------------------------------------

TEST(ChaosTest, ParseFaultConfigAcceptsTheDocumentedGrammar) {
  Result<FaultConfig> config = ParseFaultConfig(
      "seed=42 endpoint=nsm-host phase=500 phase=2000 blackhole=1 phase=0 "
      "endpoint=* drop=0.25 dup=0.1 delay=0.5 delay_ms=2..7");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->seed, 42u);
  ASSERT_EQ(config->plans.size(), 2u);
  const FaultPlan& phased = config->plans[0];
  EXPECT_EQ(phased.endpoint, "nsm-host");
  ASSERT_EQ(phased.phases.size(), 3u);
  EXPECT_EQ(phased.phases[0].duration_ms, 500);
  EXPECT_FALSE(phased.phases[0].spec.blackhole);
  EXPECT_EQ(phased.phases[1].duration_ms, 2000);
  EXPECT_TRUE(phased.phases[1].spec.blackhole);
  EXPECT_EQ(phased.phases[2].duration_ms, 0);
  EXPECT_TRUE(phased.phases[2].spec.healthy());
  const FaultPlan& lossy = config->plans[1];
  EXPECT_EQ(lossy.endpoint, "*");
  ASSERT_EQ(lossy.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(lossy.phases[0].spec.drop, 0.25);
  EXPECT_DOUBLE_EQ(lossy.phases[0].spec.duplicate, 0.1);
  EXPECT_DOUBLE_EQ(lossy.phases[0].spec.delay, 0.5);
  EXPECT_EQ(lossy.phases[0].spec.delay_min_ms, 2);
  EXPECT_EQ(lossy.phases[0].spec.delay_max_ms, 7);
}

TEST(ChaosTest, ParseFaultConfigRejectsMalformedSpecs) {
  // A typo must never silently run a healthy "chaos" test.
  EXPECT_FALSE(ParseFaultConfig("bogus").ok());
  EXPECT_FALSE(ParseFaultConfig("frobnicate=1").ok());
  EXPECT_FALSE(ParseFaultConfig("endpoint=x frobnicate=1").ok());
  EXPECT_FALSE(ParseFaultConfig("endpoint=x drop=1.5").ok());
  EXPECT_FALSE(ParseFaultConfig("endpoint=x drop=nope").ok());
  EXPECT_FALSE(ParseFaultConfig("endpoint=x delay_ms=7..2").ok());
  EXPECT_FALSE(ParseFaultConfig("drop=0.1 endpoint=x").ok()) << "spec before any endpoint";
  EXPECT_FALSE(ParseFaultConfig("endpoint=").ok());
}

TEST(ChaosTest, CorruptFrameIsDeterministicAndBounded) {
  uint64_t seed = AnnounceSeed("CorruptFrameIsDeterministicAndBounded");
  Bytes original(64, 0xa5);
  Bytes a = original;
  Bytes b = original;
  FaultInjector::CorruptFrame(&a, seed);
  FaultInjector::CorruptFrame(&b, seed);
  EXPECT_EQ(a, b) << "the same salt must corrupt the same frame the same way";
  EXPECT_NE(a, original);
  // 1..3 bit flips: count differing bits.
  int flipped = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    uint8_t diff = a[i] ^ original[i];
    for (int bit = 0; bit < 8; ++bit) {
      flipped += (diff >> bit) & 1;
    }
  }
  EXPECT_GE(flipped, 1);
  EXPECT_LE(flipped, 3);

  Bytes empty;
  FaultInjector::CorruptFrame(&empty, seed);
  EXPECT_TRUE(empty.empty());
}

TEST(ChaosTest, SameSeedReplaysSameDecisionSequence) {
  uint64_t seed = AnnounceSeed("SameSeedReplaysSameDecisionSequence");
  FaultConfig config;
  config.seed = seed;
  config.plans.push_back(OnePhasePlan("*", [] {
    FaultSpec spec;
    spec.drop = 0.4;
    spec.duplicate = 0.2;
    spec.delay = 0.3;
    spec.corrupt = 0.1;
    return spec;
  }()));

  constexpr int kEndpoints = 4;
  constexpr int kDraws = 200;
  auto fingerprint = [](const FaultDecision& d) {
    return StrFormat("%llu:%d%d%d%d:%lld", static_cast<unsigned long long>(d.sequence),
                     d.drop ? 1 : 0, d.duplicate ? 1 : 0, d.reorder ? 1 : 0, d.corrupt ? 1 : 0,
                     static_cast<long long>(d.delay_ms));
  };

  // Injector A: four threads hammer distinct endpoints concurrently.
  FaultInjector a(config);
  std::vector<std::vector<std::string>> concurrent(kEndpoints);
  {
    std::vector<std::thread> threads;
    for (int e = 0; e < kEndpoints; ++e) {
      threads.emplace_back([&, e] {
        std::string host = "ep" + std::to_string(e);
        for (int i = 0; i < kDraws; ++i) {
          concurrent[e].push_back(fingerprint(a.Decide(host, 1000)));
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  // Injector B: the same draws, single-threaded and interleaved differently.
  FaultInjector b(config);
  std::vector<std::vector<std::string>> sequential(kEndpoints);
  for (int i = 0; i < kDraws; ++i) {
    for (int e = kEndpoints - 1; e >= 0; --e) {
      sequential[e].push_back(fingerprint(b.Decide("ep" + std::to_string(e), 1000)));
    }
  }

  for (int e = 0; e < kEndpoints; ++e) {
    EXPECT_EQ(concurrent[e], sequential[e])
        << "endpoint ep" << e << ": per-endpoint decision stream must not depend on "
        << "thread interleaving";
  }

  // And the trace form: two identically-driven injectors emit equal traces.
  FaultInjector c(config);
  FaultInjector d(config);
  c.set_trace_enabled(true);
  d.set_trace_enabled(true);
  for (int i = 0; i < 50; ++i) {
    (void)c.Decide("replay-host", 711);  // hcs:ignore-status(draw consumed for trace comparison only)
    (void)d.Decide("replay-host", 711);  // hcs:ignore-status(draw consumed for trace comparison only)
  }
  EXPECT_EQ(c.TakeTrace(), d.TakeTrace());
}

TEST(ChaosTest, PhasedPlanFollowsItsScheduleOnTheInjectedClock) {
  uint64_t seed = AnnounceSeed("PhasedPlanFollowsItsScheduleOnTheInjectedClock");
  FaultInjector injector(FaultConfig{seed, {}});
  int64_t now_ms = 0;
  injector.SetTimeFn([&now_ms] { return now_ms; });

  FaultPlan plan;
  plan.endpoint = "svc-host";
  plan.phases.push_back(FaultPhase{500, FaultSpec{}});  // healthy half a second
  FaultSpec cut;
  cut.blackhole = true;
  plan.phases.push_back(FaultPhase{1000, cut});  // partitioned one second
  plan.phases.push_back(FaultPhase{0, FaultSpec{}});  // healed forever
  injector.SetPlan(plan);

  for (int64_t t : {int64_t{0}, int64_t{100}, int64_t{499}}) {
    now_ms = t;
    EXPECT_FALSE(injector.Decide("svc-host", 80).blackhole) << "t=" << t;
  }
  for (int64_t t : {int64_t{500}, int64_t{900}, int64_t{1499}}) {
    now_ms = t;
    EXPECT_TRUE(injector.Decide("svc-host", 80).blackhole) << "t=" << t;
  }
  for (int64_t t : {int64_t{1500}, int64_t{5000}, int64_t{1000000}}) {
    now_ms = t;
    EXPECT_FALSE(injector.Decide("svc-host", 80).blackhole)
        << "t=" << t << ": the terminal phase holds forever";
  }

  // Unmatched endpoints are untouched; exact endpoint plans beat host plans.
  EXPECT_TRUE(injector.Decide("other-host", 80).pass());
  FaultSpec drop_all;
  drop_all.drop = 1.0;
  injector.SetPlan(OnePhasePlan("svc-host:99", drop_all));
  now_ms = 2000;  // host plan says healed; the exact plan must win
  EXPECT_TRUE(injector.Decide("svc-host", 99).drop);
}

TEST(ChaosTest, FilterInboundAppliesDecisionsAndCountsDrops) {
  uint64_t seed = AnnounceSeed("FilterInboundAppliesDecisionsAndCountsDrops");
  Bytes message{1, 2, 3, 4};
  ASSERT_TRUE(FilterInbound(nullptr, 80, &message).ok()) << "null injector is a no-op";
  EXPECT_EQ(message, (Bytes{1, 2, 3, 4}));

  FaultSpec drop_all;
  drop_all.drop = 1.0;
  FaultInjector dropper(FaultConfig{seed, {OnePhasePlan("local", drop_all)}});
  Status dropped = FilterInbound(&dropper, 9999, &message);
  EXPECT_EQ(dropped.code(), StatusCode::kTimeout);
  EXPECT_EQ(dropper.stats().server_drops, 1u);

  FaultSpec hole;
  hole.blackhole = true;
  FaultInjector blackholer(FaultConfig{seed, {OnePhasePlan("local", hole)}});
  EXPECT_EQ(FilterInbound(&blackholer, 9999, &message).code(), StatusCode::kUnavailable);
  EXPECT_EQ(blackholer.stats().blackholed, 1u);

  FaultSpec garble;
  garble.corrupt = 1.0;
  FaultInjector corrupter(FaultConfig{seed, {OnePhasePlan("local", garble)}});
  Bytes corrupted = message;
  ASSERT_TRUE(FilterInbound(&corrupter, 9999, &corrupted).ok())
      << "corrupted messages are still delivered";
  EXPECT_NE(corrupted, message);
  EXPECT_EQ(corrupter.stats().corruptions, 1u);
}

// --- Client-path chaos over real sockets -----------------------------------

class ChaosServeModeTest : public ::testing::TestWithParam<ServeMode> {};

INSTANTIATE_TEST_SUITE_P(BothModes, ChaosServeModeTest,
                         ::testing::Values(ServeMode::kThreadPerEndpoint, ServeMode::kReactor),
                         ServeModeName);

TEST_P(ChaosServeModeTest, EchoSurvivesThirtyPercentLoss) {
  uint64_t seed = AnnounceSeed("EchoSurvivesThirtyPercentLoss");
  UdpServerHost host(GetParam());
  RpcServer server(ControlKind::kRaw, "chaos-echo");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  FaultSpec lossy;
  lossy.drop = 0.3;
  FaultInjector injector(FaultConfig{seed, {OnePhasePlan("localhost", lossy)}});
  UdpTransport udp;
  FaultInjectingTransport faulty(&udp, &injector);
  RpcClient client(/*world=*/nullptr, "localclient", &faulty);

  constexpr int kCalls = 25;
  constexpr int64_t kBudgetMs = 4000;
  int total_retries = 0;
  for (int i = 0; i < kCalls; ++i) {
    Bytes payload{static_cast<uint8_t>(i), 0x5a};
    RpcCallInfo info;
    Result<Bytes> reply = client.Call(UdpBinding(*port, 7, ControlKind::kRaw), 1, payload,
                                      RequestContext::WithTimeout(kBudgetMs), &info);
    ASSERT_TRUE(reply.ok()) << "call " << i << ": " << reply.status();
    EXPECT_EQ(*reply, payload);
    // Invariant: the retry loop never exceeds what the budget admits.
    EXPECT_LE(info.attempts, RetryPolicy::MaxAttempts(kBudgetMs)) << "call " << i;
    EXPECT_EQ(info.retries + 1, info.attempts) << "call " << i;
    total_retries += static_cast<int>(info.retries);
  }

  FaultStats stats = injector.stats();
  ReportStats("EchoSurvivesThirtyPercentLoss", stats, total_retries, /*shed=*/0);
  EXPECT_GE(stats.decisions, static_cast<uint64_t>(kCalls));
  EXPECT_GT(stats.drops, 0u) << "a 30% plan that never dropped is not running";
  host.StopAll();
}

TEST(ChaosTest, DuplicateStormDeliversEveryReplyToItsCall) {
  uint64_t seed = AnnounceSeed("DuplicateStormDeliversEveryReplyToItsCall");
  UdpServerHost host;
  std::atomic<int> handled{0};
  RpcServer server(ControlKind::kRaw, "chaos-dup");
  server.RegisterProcedure(7, 1, [&handled](const Bytes& args) -> Result<Bytes> {
    ++handled;
    return args;
  });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  FaultSpec dupy;
  dupy.duplicate = 0.6;
  FaultInjector injector(FaultConfig{seed, {OnePhasePlan("localhost", dupy)}});
  UdpTransport udp;
  FaultInjectingTransport faulty(&udp, &injector);
  RpcClient client(/*world=*/nullptr, "localclient", &faulty);

  constexpr int kCalls = 40;
  for (int i = 0; i < kCalls; ++i) {
    Bytes payload{static_cast<uint8_t>(i)};
    Result<Bytes> reply = client.Call(UdpBinding(*port, 7, ControlKind::kRaw), 1, payload);
    ASSERT_TRUE(reply.ok()) << "call " << i << ": " << reply.status();
    EXPECT_EQ(*reply, payload) << "call " << i << ": a duplicate's reply leaked into this call";
  }
  host.StopAll();

  FaultStats stats = injector.stats();
  ReportStats("DuplicateStormDeliversEveryReplyToItsCall", stats);
  EXPECT_GT(stats.duplicates, 0u);
  // Exactly one extra handler invocation per injected duplicate: duplicated
  // traffic is delivered and handled, but never crosses replies between calls.
  EXPECT_EQ(handled.load(), kCalls + static_cast<int>(stats.duplicates));
}

TEST(ChaosTest, ReorderAndDelayKeepRepliesMatchedToRequests) {
  uint64_t seed = AnnounceSeed("ReorderAndDelayKeepRepliesMatchedToRequests");
  UdpServerHost host;
  RpcServer server(ControlKind::kRaw, "chaos-trace");
  // The handler answers with the trace id the request traveled under: the
  // client can then check that every reply belongs to its own request even
  // while the injector shuffles and delays traffic.
  server.RegisterProcedure(7, 1, [](const Bytes&) -> Result<Bytes> {
    uint64_t trace = CurrentRequestContext().trace_id;
    Bytes out(8);
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<uint8_t>((trace >> (56 - 8 * i)) & 0xff);
    }
    return out;
  });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  FaultSpec wobble;
  wobble.reorder = 0.3;
  wobble.delay = 0.3;
  wobble.delay_min_ms = 1;
  wobble.delay_max_ms = 5;
  FaultInjector injector(FaultConfig{seed, {OnePhasePlan("localhost", wobble)}});

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 20;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<int> total_retries{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      UdpTransport udp;
      FaultInjectingTransport faulty(&udp, &injector);
      RpcClient client(/*world=*/nullptr, "localclient", &faulty);
      for (int i = 0; i < kCallsPerThread; ++i) {
        RpcCallInfo info;
        Result<Bytes> reply = client.Call(UdpBinding(*port, 7, ControlKind::kRaw), 1, Bytes{1},
                                          RequestContext::WithTimeout(3000), &info);
        total_retries += static_cast<int>(info.retries);
        if (!reply.ok() || reply->size() != 8) {
          ++failures;
          continue;
        }
        uint64_t echoed = 0;
        for (int b = 0; b < 8; ++b) {
          echoed = (echoed << 8) | (*reply)[b];
        }
        if (echoed != info.trace_id) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  host.StopAll();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0) << "a reply crossed onto the wrong request";
  FaultStats stats = injector.stats();
  ReportStats("ReorderAndDelayKeepRepliesMatchedToRequests", stats, total_retries.load(),
              failures.load());
  EXPECT_GT(stats.reorders + stats.delays, 0u);
  EXPECT_EQ(stats.delay_ms_total >= stats.delays, true)
      << "every delayed decision injects at least delay_min_ms";
}

// --- Serve-side chaos through the global injector --------------------------

TEST_P(ChaosServeModeTest, CorruptAndDropInboundStormStaysLive) {
  uint64_t seed = AnnounceSeed("CorruptAndDropInboundStormStaysLive");
  FaultSpec storm;
  storm.corrupt = 0.3;
  storm.drop = 0.25;
  FaultInjector injector(FaultConfig{seed, {OnePhasePlan("local", storm)}});
  ScopedGlobalInjector installed(&injector);

  UdpServerHost host(GetParam());
  RpcServer server(ControlKind::kRaw, "chaos-inbound");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  Result<uint16_t> port = host.Serve(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport udp;
  RpcClient client(/*world=*/nullptr, "localclient", &udp);
  constexpr int kCalls = 25;
  constexpr int64_t kBudgetMs = 1500;
  int successes = 0;
  int total_retries = 0;
  for (int i = 0; i < kCalls; ++i) {
    RpcCallInfo info;
    Result<Bytes> reply = client.Call(UdpBinding(*port, 7, ControlKind::kRaw), 1, Bytes{0x7e},
                                      RequestContext::WithTimeout(kBudgetMs), &info);
    // Liveness: every call returns — success, a budget-bounded timeout, or a
    // clean protocol error when a corrupted frame still decoded. Never a hang.
    if (reply.ok()) {
      ++successes;
    }
    EXPECT_LE(info.attempts, RetryPolicy::MaxAttempts(kBudgetMs)) << "call " << i;
    total_retries += static_cast<int>(info.retries);
  }

  // Snapshot before StopAll — stopping releases the endpoints.
  FaultStats collected = CollectFaultStats(&injector, &host);
  host.StopAll();

  ReportStats("CorruptAndDropInboundStormStaysLive", collected, total_retries,
              kCalls - successes);
  EXPECT_GT(successes, 0) << "a lossy (not blackholed) server must still make progress";
  EXPECT_GT(collected.server_drops, 0u);
  EXPECT_GT(collected.corruptions, 0u);
  // Every injected inbound drop was accounted by the serving runtime too
  // (its per-endpoint counters also cover garbled frames, so >=).
  EXPECT_GE(collected.EndpointDropTotal(), collected.server_drops);
  EXPECT_GT(collected.endpoint_drops.count(*port), 0u);
}

TEST(ChaosTest, CorruptFrameStormOverStreamStaysLive) {
  uint64_t seed = AnnounceSeed("CorruptFrameStormOverStreamStaysLive");
  FaultSpec garble;
  garble.corrupt = 0.4;
  FaultInjector injector(FaultConfig{seed, {OnePhasePlan("local", garble)}});
  ScopedGlobalInjector installed(&injector);

  UdpServerHost host;
  RpcServer server(ControlKind::kRaw, "chaos-stream");
  server.RegisterProcedure(7, 1, [](const Bytes& args) -> Result<Bytes> { return args; });
  Result<uint16_t> port = host.ServeStream(&server, 0);
  ASSERT_TRUE(port.ok()) << port.status();

  TcpStreamTransport transport(/*timeout_ms=*/400);
  RpcClient client(/*world=*/nullptr, "localclient", &transport);
  HrpcBinding binding = UdpBinding(*port, 7, ControlKind::kRaw);
  binding.transport = TransportKind::kTcp;

  constexpr int kCalls = 20;
  constexpr int64_t kBudgetMs = 2500;
  int successes = 0;
  int total_retries = 0;
  for (int i = 0; i < kCalls; ++i) {
    RpcCallInfo info;
    Result<Bytes> reply = client.Call(binding, 1, Bytes{0x11, 0x22},
                                      RequestContext::WithTimeout(kBudgetMs), &info);
    if (reply.ok()) {
      ++successes;
    }
    EXPECT_LE(info.attempts, RetryPolicy::MaxAttempts(kBudgetMs)) << "call " << i;
    total_retries += static_cast<int>(info.retries);
  }
  FaultStats collected = CollectFaultStats(&injector, &host);
  host.StopAll();

  ReportStats("CorruptFrameStormOverStreamStaysLive", collected, total_retries,
              kCalls - successes);
  EXPECT_GT(successes, 0);
  EXPECT_GT(collected.corruptions, 0u) << "a 40% corruption plan that never fired is not running";
}

// --- Async pipeline scenarios ----------------------------------------------
//
// The async engine does its own socket I/O, so FaultInjectingTransport (a
// RoundTrip wrapper) cannot touch its traffic. These scenarios instead run
// seeded chaotic *servers*: every shuffle, duplication, and crash point is
// drawn from an mt19937_64 keyed by the scenario seed, so a failing run
// replays byte-identically with HCS_CHAOS_SEED=<seed>.

// Reads length-prefixed frames off `fd` until `want` complete request
// bodies arrive (or the peer hangs up). Returns the raw bodies.
std::vector<Bytes> ReadFramedRequests(int fd, size_t want) {
  std::vector<uint8_t> buf;
  std::vector<Bytes> requests;
  while (requests.size() < want) {
    uint8_t chunk[4096];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    buf.insert(buf.end(), chunk, chunk + n);
    while (buf.size() >= 4) {
      uint32_t len = (static_cast<uint32_t>(buf[0]) << 24) |
                     (static_cast<uint32_t>(buf[1]) << 16) |
                     (static_cast<uint32_t>(buf[2]) << 8) | buf[3];
      if (buf.size() < 4 + len) {
        break;
      }
      requests.emplace_back(buf.begin() + 4, buf.begin() + 4 + len);
      buf.erase(buf.begin(), buf.begin() + 4 + len);
    }
  }
  return requests;
}

// Frames an echo reply (same xid, args echoed back) for one raw request.
Bytes FramedEchoReply(const Bytes& request) {
  const ControlProtocol& control = GetControlProtocol(ControlKind::kRaw);
  Result<RpcCall> call = control.DecodeCall(request);
  if (!call.ok()) {
    return Bytes{};
  }
  RpcReplyMsg reply;
  reply.xid = call->xid;
  reply.results = call->args;
  Bytes body = control.EncodeReply(reply);
  Bytes framed;
  framed.push_back(static_cast<uint8_t>(body.size() >> 24));
  framed.push_back(static_cast<uint8_t>(body.size() >> 16));
  framed.push_back(static_cast<uint8_t>(body.size() >> 8));
  framed.push_back(static_cast<uint8_t>(body.size()));
  framed.insert(framed.end(), body.begin(), body.end());
  return framed;
}

// Opens a loopback TCP listener on an ephemeral port. Returns {fd, port}.
std::pair<int, uint16_t> ListenLoopback() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (fd < 0 || bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 1) != 0) {
    return {-1, 0};
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    return {-1, 0};
  }
  return {fd, ntohs(addr.sin_port)};
}

TEST(ChaosTest, AsyncUdpDuplicateReorderStormMatchesEveryReply) {
  uint64_t seed = AnnounceSeed("AsyncUdpDuplicateReorderStormMatchesEveryReply");
  constexpr int kCalls = 16;

  // A chaotic echo server: collects every request first, then answers in a
  // seed-shuffled order, duplicating some replies and re-sending a few
  // stale ones at the end. The client must still hand every future its own
  // payload, and account the leftovers as unmatched datagrams.
  int server_fd = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(server_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(server_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(getsockname(server_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len), 0);
  uint16_t server_port = ntohs(addr.sin_port);

  std::atomic<int> duplicates_sent{0};
  std::thread server([server_fd, seed, &duplicates_sent] {
    const ControlProtocol& control = GetControlProtocol(ControlKind::kRaw);
    std::mt19937_64 rng(seed);
    std::vector<Bytes> replies;
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    while (replies.size() < kCalls) {
      uint8_t buf[2048];
      peer_len = sizeof(peer);
      ssize_t n = recvfrom(server_fd, buf, sizeof(buf), 0,
                           reinterpret_cast<sockaddr*>(&peer), &peer_len);
      if (n <= 0) {
        return;
      }
      Bytes request(buf, buf + n);
      Result<RpcCall> call = control.DecodeCall(request);
      if (!call.ok()) {
        continue;
      }
      RpcReplyMsg reply;
      reply.xid = call->xid;
      reply.results = call->args;
      replies.push_back(control.EncodeReply(reply));
    }
    std::shuffle(replies.begin(), replies.end(), rng);
    auto send_reply = [&](const Bytes& reply) {
      (void)sendto(server_fd, reply.data(), reply.size(), 0,
                   reinterpret_cast<sockaddr*>(&peer),
                   peer_len);  // hcs:ignore-status(chaos server; a lost reply is the fault under test)
    };
    for (const Bytes& reply : replies) {
      send_reply(reply);
      if (rng() % 100 < 40) {  // duplicate storm
        send_reply(reply);
        ++duplicates_sent;
      }
    }
    for (int i = 0; i < 3; ++i) {  // stale re-sends, long after the originals
      send_reply(replies[rng() % replies.size()]);
      ++duplicates_sent;
    }
  });

  UdpTransport transport;
  RpcClient client(/*world=*/nullptr, "localclient", &transport);
  AsyncClientEngine engine;
  client.set_async_engine(&engine);

  std::vector<RpcFuture> futures;
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(client.CallAsync(UdpBinding(server_port, 7, ControlKind::kRaw), 1,
                                       Bytes{static_cast<uint8_t>(i), 0x5a}));
  }
  int mismatches = 0;
  for (int i = 0; i < kCalls; ++i) {
    Result<Bytes> reply = futures[i].Wait();
    ASSERT_TRUE(reply.ok()) << "call " << i << ": " << reply.status();
    if (*reply != (Bytes{static_cast<uint8_t>(i), 0x5a})) {
      ++mismatches;
    }
  }
  server.join();
  close(server_fd);

  EXPECT_EQ(mismatches, 0) << "a duplicated or reordered reply crossed calls";
  EXPECT_GT(duplicates_sent.load(), 0) << "a 40% duplicate storm that never fired";
  // Every duplicate eventually lands as an unmatched datagram (its call
  // already completed). Give stragglers a beat to arrive.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(engine.stats().udp_unmatched, static_cast<uint64_t>(duplicates_sent.load()));
  std::cout << "[chaos] AsyncUdpDuplicateReorderStorm duplicates=" << duplicates_sent.load()
            << " unmatched=" << engine.stats().udp_unmatched << std::endl;
}

TEST(ChaosTest, AsyncStreamPipelineSurvivesDuplicateAndReorderedFrames) {
  uint64_t seed = AnnounceSeed("AsyncStreamPipelineSurvivesDuplicateAndReorderedFrames");
  constexpr int kCalls = 8;

  auto [listen_fd, port] = ListenLoopback();
  ASSERT_GE(listen_fd, 0);

  std::atomic<int> duplicates_sent{0};
  std::atomic<bool> server_ok{true};
  std::thread server([listen_fd, seed, &duplicates_sent, &server_ok] {
    int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      server_ok = false;
      return;
    }
    std::vector<Bytes> requests = ReadFramedRequests(conn, kCalls);
    if (requests.size() != kCalls) {
      server_ok = false;
      close(conn);
      return;
    }
    std::mt19937_64 rng(seed);
    std::shuffle(requests.begin(), requests.end(), rng);
    for (const Bytes& request : requests) {
      Bytes framed = FramedEchoReply(request);
      (void)send(conn, framed.data(), framed.size(),
                 0);  // hcs:ignore-status(chaos server; a lost frame is the fault under test)
      if (rng() % 100 < 40) {  // duplicate the frame, same xid
        (void)send(conn, framed.data(), framed.size(),
                   0);  // hcs:ignore-status(chaos server; duplicate frame is the fault under test)
        ++duplicates_sent;
      }
    }
    // Keep the pipe open until the client has drained everything.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    close(conn);
  });

  AsyncEngineOptions options;
  options.max_conns_per_remote = 1;  // every call pipelined on one pipe
  AsyncClientEngine engine(options);
  TcpStreamTransport transport;
  RpcClient client(/*world=*/nullptr, "localclient", &transport);
  client.set_async_engine(&engine);

  HrpcBinding binding = UdpBinding(port, 7, ControlKind::kRaw);
  binding.transport = TransportKind::kTcp;
  std::vector<RpcFuture> futures;
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(client.CallAsync(binding, 1, Bytes{static_cast<uint8_t>(i), 0x77}));
  }
  for (int i = 0; i < kCalls; ++i) {
    Result<Bytes> reply = futures[i].Wait();
    ASSERT_TRUE(reply.ok()) << "call " << i << ": " << reply.status();
    EXPECT_EQ(*reply, (Bytes{static_cast<uint8_t>(i), 0x77}))
        << "a reordered or duplicated frame crossed pipelined calls";
  }
  server.join();
  close(listen_fd);
  ASSERT_TRUE(server_ok.load());

  EXPECT_EQ(engine.stats().stream_connects, 1u);
  EXPECT_EQ(engine.stats().stream_unmatched, static_cast<uint64_t>(duplicates_sent.load()))
      << "every duplicated frame must be counted, never crossed onto a call";
  std::cout << "[chaos] AsyncStreamPipelineDupReorder duplicates=" << duplicates_sent.load()
            << std::endl;
}

TEST(ChaosTest, AsyncServerCrashMidPipelineFailsAllOutstandingFutures) {
  uint64_t seed = AnnounceSeed("AsyncServerCrashMidPipelineFailsAllOutstandingFutures");
  constexpr int kCalls = 8;

  auto [listen_fd, port] = ListenLoopback();
  ASSERT_GE(listen_fd, 0);

  // The seed picks how deep into the pipeline the crash lands and which
  // calls got answered first.
  std::mt19937_64 rng(seed);
  const size_t answered = 2 + rng() % 4;  // 2..5 of 8
  std::atomic<bool> server_ok{true};
  std::thread server([listen_fd, answered, &rng, &server_ok] {
    int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      server_ok = false;
      return;
    }
    std::vector<Bytes> requests = ReadFramedRequests(conn, kCalls);
    if (requests.size() != kCalls) {
      server_ok = false;
      close(conn);
      return;
    }
    std::shuffle(requests.begin(), requests.end(), rng);
    for (size_t i = 0; i < answered; ++i) {
      Bytes framed = FramedEchoReply(requests[i]);
      (void)send(conn, framed.data(), framed.size(),
                 0);  // hcs:ignore-status(chaos server; the crash below is the fault under test)
    }
    // Crash mid-pipeline: hard close with the rest still outstanding.
    close(conn);
  });

  AsyncEngineOptions options;
  options.max_conns_per_remote = 1;
  AsyncClientEngine engine(options);
  TcpStreamTransport transport;
  RpcClient client(/*world=*/nullptr, "localclient", &transport);
  client.set_async_engine(&engine);

  HrpcBinding binding = UdpBinding(port, 7, ControlKind::kRaw);
  binding.transport = TransportKind::kTcp;
  std::vector<RpcFuture> futures;
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(client.CallAsync(binding, 1, Bytes{static_cast<uint8_t>(i)}));
  }

  size_t ok_count = 0;
  size_t unavailable = 0;
  for (int i = 0; i < kCalls; ++i) {
    Result<Bytes> reply = futures[i].Wait();
    if (reply.ok()) {
      EXPECT_EQ(*reply, Bytes{static_cast<uint8_t>(i)}) << "answered call " << i;
      ++ok_count;
    } else {
      EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable)
          << "outstanding call " << i << " must fail kUnavailable, got " << reply.status();
      ++unavailable;
    }
  }
  server.join();
  close(listen_fd);
  ASSERT_TRUE(server_ok.load());

  EXPECT_EQ(ok_count, answered);
  EXPECT_EQ(unavailable, static_cast<size_t>(kCalls) - answered);
  std::cout << "[chaos] AsyncServerCrashMidPipeline answered=" << answered
            << " failed_unavailable=" << unavailable << std::endl;
}

// --- Name-service scenarios over real sockets ------------------------------

// A fake modified-BIND on a real socket (the udp_transport_test shape):
// every answer maps a context to "UW-BIND"; NXDOMAIN names contain
// "missing"; `delay_ms` of real time per query.
class FakeMetaBind {
 public:
  explicit FakeMetaBind(int delay_ms) : server_(ControlKind::kRaw, "chaos-meta-bind") {
    server_.RegisterProcedure(
        kBindProgram, kBindProcQuery, [this, delay_ms](const Bytes& args) -> Result<Bytes> {
          ++queries_;
          HCS_ASSIGN_OR_RETURN(BindQueryRequest request, BindQueryRequest::Decode(args));
          if (delay_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
          }
          BindQueryResponse response;
          if (request.name.find("missing") != std::string::npos) {
            response.rcode = Rcode::kNxDomain;
          } else {
            response.rcode = Rcode::kNoError;
            response.answers = UnspecRecordsFromValue(
                request.name, RecordBuilder().Str("ns", "UW-BIND").Build(), 300);
          }
          return response.Encode();
        });
  }

  Result<uint16_t> Serve(uint16_t port = 0) { return host_.Serve(&server_, port); }
  int queries() const { return queries_.load(); }
  void Stop() { host_.StopAll(); }

 private:
  RpcServer server_;
  UdpServerHost host_;
  std::atomic<int> queries_{0};
};

TEST(ChaosTest, MetaResolutionSurvivesLossAndDuplication) {
  uint64_t seed = AnnounceSeed("MetaResolutionSurvivesLossAndDuplication");
  FakeMetaBind upstream(/*delay_ms=*/0);
  Result<uint16_t> port = upstream.Serve();
  ASSERT_TRUE(port.ok()) << port.status();

  FaultSpec lossy;
  lossy.drop = 0.5;
  lossy.duplicate = 0.25;
  FaultInjector injector(FaultConfig{seed, {OnePhasePlan("localhost", lossy)}});
  UdpTransport udp;
  FaultInjectingTransport faulty(&udp, &injector);
  RpcClient rpc(/*world=*/nullptr, "localclient", &faulty);
  HnsCache cache(/*world=*/nullptr, CacheMode::kDemarshalled);
  MetaStore meta(&rpc, "localhost", "", &cache);
  meta.set_meta_port(*port);

  constexpr int kContexts = 16;
  for (int i = 0; i < kContexts; ++i) {
    // Fresh budget per resolution; MetaStore inherits it ambiently.
    ScopedRequestContext scope(RequestContext::WithTimeout(4000));
    Result<std::string> ns = meta.ContextToNameService("LossyCtx" + std::to_string(i));
    ASSERT_TRUE(ns.ok()) << "context " << i << ": " << ns.status();
    EXPECT_EQ(*ns, "UW-BIND");
  }
  upstream.Stop();

  FaultStats stats = injector.stats();
  ReportStats("MetaResolutionSurvivesLossAndDuplication", stats);
  EXPECT_GT(stats.drops, 0u);
  // Invariant: the record cache stayed structurally consistent through the
  // retry/duplication storm.
  Status invariants = cache.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants;
  EXPECT_EQ(cache.size(), static_cast<size_t>(kContexts));
}

TEST(ChaosTest, MetaServerCrashMidSingleflightRecoversAfterRestart) {
  AnnounceSeed("MetaServerCrashMidSingleflightRecoversAfterRestart");
  FakeMetaBind upstream(/*delay_ms=*/150);
  Result<uint16_t> port = upstream.Serve();
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport udp;
  RpcClient rpc(/*world=*/nullptr, "localclient", &udp);
  HnsCache cache(/*world=*/nullptr, CacheMode::kDemarshalled);
  MetaStore meta(&rpc, "localhost", "", &cache);
  meta.set_meta_port(*port);

  // A leader fetch gets in flight, followers pile onto the singleflight,
  // then the server dies mid-exchange. Every caller must get a clean
  // Status — no hang, no crash, no poisoned cache state.
  std::atomic<int> ok_count{0};
  std::atomic<int> failed_clean{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    ScopedRequestContext scope(RequestContext::WithTimeout(800));
    Result<std::string> ns = meta.ContextToNameService("CrashCtx");
    (ns.ok() ? ok_count : failed_clean)++;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      ScopedRequestContext scope(RequestContext::WithTimeout(800));
      Result<std::string> ns = meta.ContextToNameService("CrashCtx");
      (ns.ok() ? ok_count : failed_clean)++;
    });
  }
  upstream.Stop();  // mid-singleflight
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ok_count.load() + failed_clean.load(), 5) << "every caller returned";

  // Restart on the same port; resolution must recover without a restart of
  // the client stack (a timeout is not negatively cached).
  Result<uint16_t> restarted = upstream.Serve(*port);
  if (!restarted.ok()) {
    restarted = upstream.Serve(0);  // port raced away; any port will do
    ASSERT_TRUE(restarted.ok()) << restarted.status();
    meta.set_meta_port(*restarted);
  }
  {
    ScopedRequestContext scope(RequestContext::WithTimeout(2000));
    Result<std::string> ns = meta.ContextToNameService("CrashCtx");
    ASSERT_TRUE(ns.ok()) << ns.status();
    EXPECT_EQ(*ns, "UW-BIND");
  }
  upstream.Stop();
  Status invariants = cache.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants;
}

// --- Simulated-testbed scenarios -------------------------------------------

TEST(ChaosTest, RegisterStormAcrossHealingPartition) {
  AnnounceSeed("RegisterStormAcrossHealingPartition");
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  MetaStore& meta = client.session->local_hns()->meta();

  // Partition the client away from everything (meta authority included).
  bed.Partition({kClientHost});
  constexpr int kNsms = 8;
  for (int i = 0; i < kNsms; ++i) {
    NsmInfo info = bed.HostAddrBindInfo();
    info.nsm_name = "StormNSM-" + std::to_string(i);
    info.query_class = "StormQC-" + std::to_string(i);
    Status status = meta.RegisterNsm(info);
    ASSERT_FALSE(status.ok()) << "registration crossed a partition";
    EXPECT_EQ(status.code(), StatusCode::kTimeout) << "a cut link looks like loss, not refusal";
  }

  bed.HealPartition();
  for (int i = 0; i < kNsms; ++i) {
    NsmInfo info = bed.HostAddrBindInfo();
    info.nsm_name = "StormNSM-" + std::to_string(i);
    info.query_class = "StormQC-" + std::to_string(i);
    Status status = meta.RegisterNsm(info);
    ASSERT_TRUE(status.ok()) << "registration " << i << " after heal: " << status;
    Result<NsmInfo> read_back = meta.NsmLocation(info.nsm_name);
    ASSERT_TRUE(read_back.ok()) << read_back.status();
    EXPECT_EQ(read_back->host, info.host);
  }
  // And the storm unwinds cleanly.
  for (int i = 0; i < kNsms; ++i) {
    NsmInfo info = bed.HostAddrBindInfo();
    Status status = meta.UnregisterNsm(info.ns_name, "StormQC-" + std::to_string(i));
    EXPECT_TRUE(status.ok()) << "unregister " << i << ": " << status;
  }

  Status invariants = client.hns_cache->CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants;
}

TEST(ChaosTest, NsmCrashIsUnavailableUntilRestart) {
  AnnounceSeed("NsmCrashIsUnavailableUntilRestart");
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllRemote);
  client.FlushAll();
  WireValue args = RecordBuilder().Str("service", kDesiredService).Build();

  bed.CrashHost(kNsmServerHost);
  Result<WireValue> down = client.session->Query(SunName(), kQueryClassHrpcBinding, args);
  EXPECT_EQ(down.status().code(), StatusCode::kUnavailable);

  bed.RestartHost(kNsmServerHost);
  Result<WireValue> up = client.session->Query(SunName(), kQueryClassHrpcBinding, args);
  EXPECT_TRUE(up.ok()) << up.status();
}

TEST(ChaosTest, TtlExpiryDuringBlackholeServesNothingStale) {
  uint64_t seed = AnnounceSeed("TtlExpiryDuringBlackholeServesNothingStale");
  TestbedOptions options;
  options.hns_composite_cache = true;
  Testbed bed(options);

  FaultInjector injector(FaultConfig{seed, {}});
  bed.InstallFaultInjector(&injector);
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);

  // Warm the composite FindNSM path with the injector healthy.
  Result<NsmHandle> warm = client.session->FindNsm(SunName(), kQueryClassHrpcBinding);
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE(client.composite_cache->Get(kContextBindBinding, kQueryClassHrpcBinding)
                  .has_value());

  // Blackhole both meta servers: the availability argument says warm entries
  // keep answering...
  injector.BlackholeEndpoint(kMetaBindHost);
  injector.BlackholeEndpoint(kMetaSecondaryHost);
  Result<NsmHandle> cached = client.session->FindNsm(SunName(), kQueryClassHrpcBinding);
  EXPECT_TRUE(cached.ok()) << cached.status();

  // ...but only until the min-constituent TTL. Past it, the outage must
  // surface — a stale composite binding must never be served.
  bed.world().clock().AdvanceMs(3601.0 * 1000.0);
  Result<NsmHandle> stale = client.session->FindNsm(SunName(), kQueryClassHrpcBinding);
  EXPECT_FALSE(stale.ok()) << "a composite binding outlived its constituents' TTL";
  EXPECT_EQ(stale.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(client.composite_cache->Get(kContextBindBinding, kQueryClassHrpcBinding)
                   .has_value());
  EXPECT_GT(injector.stats().blackholed, 0u);

  // Healing the endpoints restores resolution (the sim transport path).
  injector.HealEndpoint(kMetaBindHost);
  injector.HealEndpoint(kMetaSecondaryHost);
  Result<NsmHandle> healed = client.session->FindNsm(SunName(), kQueryClassHrpcBinding);
  EXPECT_TRUE(healed.ok()) << healed.status();

  ReportStats("TtlExpiryDuringBlackholeServesNothingStale", injector.stats());
  Status composite_invariants = client.composite_cache->CheckInvariants();
  EXPECT_TRUE(composite_invariants.ok()) << composite_invariants;
  Status cache_invariants = client.hns_cache->CheckInvariants();
  EXPECT_TRUE(cache_invariants.ok()) << cache_invariants;
}

}  // namespace
}  // namespace hcs
