// Tests for the interface description language and its interpretive stubs.

#include <gtest/gtest.h>

#include "src/common/rand.h"
#include "src/wire/idl.h"

namespace hcs {
namespace {

const char* kBindingIdl = R"(
// The HRPC binding record, as the stub compiler would see it.
message Binding {
  host: string;
  port: u32;
  program: u32;
  big_id: u64;
  reachable: bool;
  aliases: string_list;
  cookie: opaque;
}
)";

WireValue SampleRecord() {
  return RecordBuilder()
      .Str("host", "fiji.cs.washington.edu")
      .U32("port", 2049)
      .U32("program", 100003)
      .U64("big_id", 0x1122334455667788ULL)
      .U32("reachable", 1)
      .Value("aliases", WireValue::OfList({WireValue::OfString("fiji"),
                                           WireValue::OfString("fiji-gw")}))
      .Blob("cookie", Bytes{9, 8, 7})
      .Build();
}

TEST(IdlParserTest, ParsesMessages) {
  Result<std::vector<IdlMessage>> messages = ParseIdl(kBindingIdl);
  ASSERT_TRUE(messages.ok()) << messages.status();
  ASSERT_EQ(messages->size(), 1u);
  const IdlMessage& message = messages->front();
  EXPECT_EQ(message.name(), "Binding");
  ASSERT_EQ(message.fields().size(), 7u);
  EXPECT_EQ(message.fields()[0], (IdlField{"host", IdlType::kString}));
  EXPECT_EQ(message.fields()[5], (IdlField{"aliases", IdlType::kStringList}));
}

TEST(IdlParserTest, ParsesMultipleMessagesAndComments) {
  Result<std::vector<IdlMessage>> messages = ParseIdl(R"(
message A {
  x: u32;
}
// comment between messages
message B {
  y: string;
}
)");
  ASSERT_TRUE(messages.ok()) << messages.status();
  EXPECT_EQ(messages->size(), 2u);
}

TEST(IdlParserTest, SyntaxErrorsCarryLineNumbers) {
  EXPECT_NE(ParseIdl("message A {\n  x: nosuchtype;\n}\n").status().message().find("line 2"),
            std::string::npos);
  EXPECT_NE(ParseIdl("message A {\n  x: u32\n}\n").status().message().find("line 2"),
            std::string::npos);
  EXPECT_FALSE(ParseIdl("message A {\n}\n").ok());               // empty message
  EXPECT_FALSE(ParseIdl("x: u32;\n").ok());                      // field outside message
  EXPECT_FALSE(ParseIdl("message A {\n  x: u32;\n").ok());       // unterminated
  EXPECT_FALSE(ParseIdl("message A {\nmessage B {\n}\n}").ok()); // nested
}

class IdlStubTest : public ::testing::TestWithParam<IdlRep> {
 protected:
  IdlMessage Message() {
    return ParseIdl(kBindingIdl).value().front();
  }
};

TEST_P(IdlStubTest, RoundTripsThroughEitherRepresentation) {
  IdlMessage message = Message();
  WireValue record = SampleRecord();
  Result<Bytes> wire = message.Marshal(record, GetParam());
  ASSERT_TRUE(wire.ok()) << wire.status();
  Result<WireValue> decoded = message.Demarshal(*wire, GetParam());
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  EXPECT_EQ(decoded->StringField("host").value(), "fiji.cs.washington.edu");
  EXPECT_EQ(decoded->Uint32Field("port").value(), 2049u);
  EXPECT_EQ(decoded->Field("big_id").value().AsUint64().value(), 0x1122334455667788ULL);
  EXPECT_EQ(decoded->Uint32Field("reachable").value(), 1u);
  EXPECT_EQ(decoded->Field("aliases").value().AsList().value().size(), 2u);
  EXPECT_EQ(decoded->Field("cookie").value().AsBlob().value(), (Bytes{9, 8, 7}));
}

TEST_P(IdlStubTest, TheTwoRepresentationsProduceDifferentBytes) {
  IdlMessage message = Message();
  Bytes xdr = message.Marshal(SampleRecord(), IdlRep::kXdr).value();
  Bytes courier = message.Marshal(SampleRecord(), IdlRep::kCourier).value();
  EXPECT_NE(xdr, courier) << "XDR pads to 4 bytes, Courier to 2 — same data, different wire";
}

TEST_P(IdlStubTest, MissingAndMistypedFieldsRejected) {
  IdlMessage message = Message();
  WireValue missing = RecordBuilder().Str("host", "h").Build();
  EXPECT_EQ(message.Marshal(missing, GetParam()).status().code(),
            StatusCode::kInvalidArgument);

  WireValue mistyped = SampleRecord();
  // Replace port with a string.
  std::vector<WireField> fields = mistyped.AsRecord().value();
  for (WireField& field : fields) {
    if (field.first == "port") {
      field.second = WireValue::OfString("not-a-number");
    }
  }
  EXPECT_FALSE(message.Marshal(WireValue::OfRecord(fields), GetParam()).ok());
}

TEST_P(IdlStubTest, TruncatedWireFailsCleanly) {
  IdlMessage message = Message();
  Bytes wire = message.Marshal(SampleRecord(), GetParam()).value();
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Bytes truncated(wire.begin(), wire.begin() + rng.Uniform(wire.size()));
    Result<WireValue> decoded = message.Demarshal(truncated, GetParam());
    EXPECT_FALSE(decoded.ok());
  }
  // Trailing junk also rejected.
  wire.push_back(0);
  wire.push_back(0);
  EXPECT_EQ(message.Demarshal(wire, GetParam()).status().code(),
            StatusCode::kProtocolError);
}

INSTANTIATE_TEST_SUITE_P(Reps, IdlStubTest, ::testing::Values(IdlRep::kXdr, IdlRep::kCourier),
                         [](const auto& param_info) {
                           return param_info.param == IdlRep::kXdr ? "Xdr" : "Courier";
                         });

}  // namespace
}  // namespace hcs
