// Batched UDP I/O (ctest label `concurrency`; run under
// -DHCS_SANITIZE=thread too): the recvmmsg/sendmmsg wrappers, their
// single-shot fallback, partial-completion handling, truncation inside a
// batch, per-frame (never per-batch) fault decisions, and a batched
// FindNSM-vs-Register storm over real sockets. Syscall fakes are injected
// with SetMmsgSyscallsForTest so ENOSYS/EAGAIN/partial cases are
// deterministic, not host-dependent.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/bindns/server.h"
#include "src/common/arena.h"
#include "src/hns/hns.h"
#include "src/hns/name.h"
#include "src/rpc/client.h"
#include "src/rpc/fault.h"
#include "src/rpc/mmsg.h"
#include "src/rpc/server.h"
#include "src/rpc/udp_transport.h"
#include "src/sim/world.h"
#include "src/wire/value.h"

namespace hcs {
namespace {

// --- Arena ------------------------------------------------------------------

TEST(ArenaTest, AllocateAlignAndGrow) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);

  uint8_t* a = arena.Allocate(10);
  ASSERT_NE(a, nullptr);
  std::memset(a, 0xab, 10);
  uint8_t* b = arena.Allocate(1, 64);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_GE(arena.bytes_used(), 11u);

  // Force growth past the first block; earlier memory stays valid and
  // intact until Reset.
  uint8_t* big = arena.Allocate(1 << 16);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xcd, 1 << 16);
  EXPECT_EQ(a[0], 0xab);
  EXPECT_GE(arena.bytes_capacity(), (1u << 16));
}

TEST(ArenaTest, ResetCoalescesToHighWaterBlock) {
  Arena arena(64);
  (void)arena.Allocate(64);
  (void)arena.Allocate(4096);  // second block
  size_t high_water = arena.bytes_capacity();
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // After Reset the high-water capacity is one contiguous block: an
  // allocation of the full prior footprint must not grow capacity.
  uint8_t* p = arena.Allocate(high_water);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.bytes_capacity(), high_water);
}

// --- Batch-size resolution --------------------------------------------------

TEST(BatchSizeTest, ExplicitEnvAndClamp) {
  EXPECT_EQ(ResolveUdpBatchSize(4), 4);
  EXPECT_EQ(ResolveUdpBatchSize(1), 1);
  EXPECT_EQ(ResolveUdpBatchSize(kMaxUdpBatch + 100), kMaxUdpBatch);

  ASSERT_EQ(setenv("HCS_UDP_BATCH", "7", 1), 0);
  EXPECT_EQ(ResolveUdpBatchSize(0), 7);
  EXPECT_EQ(ResolveUdpBatchSize(3), 3);  // explicit beats env
  ASSERT_EQ(setenv("HCS_UDP_BATCH", "not-a-number", 1), 0);
  EXPECT_EQ(ResolveUdpBatchSize(0), kDefaultUdpBatch);
  ASSERT_EQ(unsetenv("HCS_UDP_BATCH"), 0);
  EXPECT_EQ(ResolveUdpBatchSize(0), kDefaultUdpBatch);
}

// --- Socket helpers ---------------------------------------------------------

sockaddr_in Loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

// Binds an ephemeral loopback UDP socket; aborts the test on failure.
int BindUdp(uint16_t* port_out) {
  int fd = socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = Loopback(0);
  EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port_out = ntohs(addr.sin_port);
  return fd;
}

void SendTo(int fd, uint16_t port, const Bytes& payload) {
  sockaddr_in addr = Loopback(port);
  ASSERT_EQ(sendto(fd, payload.data(), payload.size(), 0,
                   reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            static_cast<ssize_t>(payload.size()));
}

// --- UdpRecvBatch over real sockets -----------------------------------------

TEST(BatchIoTest, PartialBatchLandsQueuedDatagrams) {
  uint16_t port = 0;
  int fd = BindUdp(&port);
  int sender = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(sender, 0);
  SendTo(sender, port, Bytes{1});
  SendTo(sender, port, Bytes{2, 2});
  SendTo(sender, port, Bytes{3, 3, 3});

  UdpRecvBatch batch(16, 512);
  // wait_for_one on the blocking socket: returns as soon as something is
  // queued — here all three, well short of capacity.
  int n = batch.Recv(fd, /*wait_for_one=*/true);
  int total = n;
  // The kernel may deliver the burst across polls; sweep until all three.
  while (total < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    UdpRecvBatch more(16, 512);
    int m = more.Recv(fd, /*wait_for_one=*/true);
    ASSERT_GT(m, 0);
    total += m;
  }
  EXPECT_EQ(total, 3);
  ASSERT_GE(n, 1);
  EXPECT_EQ(batch.frame(0).size, 1u);
  EXPECT_EQ(batch.frame(0).data[0], 1);
  EXPECT_FALSE(batch.frame(0).truncated);

  // Nothing left: a nonblocking batch read reports zero frames.
  ASSERT_EQ(SetNonBlocking(fd).code(), StatusCode::kOk);
  UdpRecvBatch empty(16, 512);
  EXPECT_EQ(empty.Recv(fd, /*wait_for_one=*/false), 0);
  close(sender);
  close(fd);
}

TEST(BatchIoTest, OversizedDatagramIsFlaggedTruncatedOthersSurvive) {
  uint16_t port = 0;
  int fd = BindUdp(&port);
  int sender = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(sender, 0);
  SendTo(sender, port, Bytes(100, 0xee));  // exceeds the 16-byte slot
  SendTo(sender, port, Bytes{7, 8, 9});

  UdpRecvBatch batch(8, 16);
  int total = 0;
  bool saw_truncated = false, saw_small = false;
  while (total < 2) {
    int n = batch.Recv(fd, /*wait_for_one=*/true);
    ASSERT_GT(n, 0);
    for (int i = 0; i < n; ++i) {
      if (batch.frame(i).truncated) {
        saw_truncated = true;
        EXPECT_EQ(batch.frame(i).size, 16u);  // cut to the slot
      } else {
        saw_small = true;
        EXPECT_EQ(batch.frame(i).size, 3u);
        EXPECT_EQ(batch.frame(i).data[0], 7);
      }
    }
    total += n;
  }
  EXPECT_TRUE(saw_truncated);
  EXPECT_TRUE(saw_small);
  close(sender);
  close(fd);
}

// --- Injected syscall failures ----------------------------------------------

int FailEnosysRecvmmsg(int, mmsghdr*, unsigned int, int) {
  errno = ENOSYS;
  return -1;
}

int FailEnosysSendmmsg(int, mmsghdr*, unsigned int, int) {
  errno = ENOSYS;
  return -1;
}

// Accepts at most one message per call: every SendReplies batch completes
// only through repeated partial-completion consumption.
int OneAtATimeSendmmsg(int fd, mmsghdr* msgs, unsigned int vlen, int flags) {
  return sendmmsg(fd, msgs, vlen > 0 ? 1 : 0, flags);
}

std::atomic<int> g_eagain_after{0};

// Accepts one message, then reports EAGAIN for the rest of the batch.
int EagainAfterOneSendmmsg(int fd, mmsghdr* msgs, unsigned int vlen, int flags) {
  if (g_eagain_after.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    errno = EAGAIN;
    return -1;
  }
  return sendmmsg(fd, msgs, vlen > 0 ? 1 : 0, flags);
}

class MmsgFakeGuard {
 public:
  MmsgFakeGuard(RecvmmsgFn recv_fn, SendmmsgFn send_fn) {
    SetMmsgSyscallsForTest(recv_fn, send_fn);
  }
  ~MmsgFakeGuard() {
    SetMmsgSyscallsForTest(nullptr, nullptr);
    ResetMmsgAvailabilityForTest();
  }
};

TEST(BatchIoTest, EnosysRecvFlipsToSingleShotFallbackPermanently) {
  MmsgFakeGuard guard(&FailEnosysRecvmmsg, &FailEnosysSendmmsg);

  uint16_t port = 0;
  int fd = BindUdp(&port);
  int sender = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(sender, 0);
  SendTo(sender, port, Bytes{4, 5});

  ASSERT_TRUE(MmsgAvailable());
  UdpRecvBatch batch(8, 512);
  int n = batch.Recv(fd, /*wait_for_one=*/true);
  // The ENOSYS recvmmsg flipped availability and the same Recv call
  // finished the job over recvfrom — identical frames, no caller retry.
  ASSERT_EQ(n, 1);
  EXPECT_FALSE(MmsgAvailable());
  EXPECT_EQ(batch.frame(0).size, 2u);
  EXPECT_EQ(batch.frame(0).data[0], 4);

  // Sends also run single-shot now, with the same completion accounting.
  std::vector<UdpReply> replies(2);
  for (size_t i = 0; i < replies.size(); ++i) {
    replies[i].peer = Loopback(port);
    replies[i].peer_len = sizeof(sockaddr_in);
    replies[i].payload = Bytes{static_cast<uint8_t>(i)};
  }
  EXPECT_EQ(SendReplies(sender, replies), 2u);
  close(sender);
  close(fd);
}

TEST(BatchIoTest, SendRepliesConsumesPartialCompletions) {
  MmsgFakeGuard guard(nullptr, &OneAtATimeSendmmsg);

  uint16_t port = 0;
  int rx = BindUdp(&port);
  int tx = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(tx, 0);

  std::vector<UdpReply> replies(5);
  for (size_t i = 0; i < replies.size(); ++i) {
    replies[i].peer = Loopback(port);
    replies[i].peer_len = sizeof(sockaddr_in);
    replies[i].payload = Bytes{static_cast<uint8_t>(i + 1)};
  }
  // Each fake call accepts one datagram; SendReplies must resume from the
  // first unsent message until the whole batch is out.
  EXPECT_EQ(SendReplies(tx, replies), 5u);

  std::vector<bool> seen(6, false);
  for (int i = 0; i < 5; ++i) {
    uint8_t buf[8];
    ssize_t n = recv(rx, buf, sizeof(buf), 0);
    ASSERT_EQ(n, 1);
    seen[buf[0]] = true;
  }
  for (int v = 1; v <= 5; ++v) {
    EXPECT_TRUE(seen[static_cast<size_t>(v)]) << "datagram " << v << " missing";
  }
  close(tx);
  close(rx);
}

TEST(BatchIoTest, EagainMidBatchAbandonsRemainderAndReportsCount) {
  g_eagain_after.store(1, std::memory_order_relaxed);
  MmsgFakeGuard guard(nullptr, &EagainAfterOneSendmmsg);

  uint16_t port = 0;
  int rx = BindUdp(&port);
  int tx = socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(tx, 0);

  std::vector<UdpReply> replies(4);
  for (size_t i = 0; i < replies.size(); ++i) {
    replies[i].peer = Loopback(port);
    replies[i].peer_len = sizeof(sockaddr_in);
    replies[i].payload = Bytes{static_cast<uint8_t>(i + 1)};
  }
  // One accepted, then EAGAIN: the shortfall is the caller's to account —
  // exactly the count contract tools/lint_failpaths.py enforces at raw
  // call sites.
  EXPECT_EQ(SendReplies(tx, replies), 1u);
  close(tx);
  close(rx);
}

// --- Batched serving: truncation, fault decisions, end-to-end ---------------

Bytes EncodeEchoCall(uint32_t xid, const Bytes& args) {
  RpcCall call;
  call.xid = xid;
  call.program = 7;
  call.version = 2;
  call.procedure = 1;
  call.args = args;
  return GetControlProtocol(ControlKind::kSunRpc).EncodeCall(call);
}

// Fires `count` requests at `port` from one socket without waiting between
// sends (so the server's recvmmsg sees real multi-frame batches), then
// counts the replies.
int BurstEcho(uint16_t port, int count) {
  int fd = socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{2, 0};
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  for (int i = 0; i < count; ++i) {
    Bytes frame = EncodeEchoCall(static_cast<uint32_t>(i + 1), Bytes{0xaa});
    sockaddr_in addr = Loopback(port);
    EXPECT_EQ(sendto(fd, frame.data(), frame.size(), 0, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              static_cast<ssize_t>(frame.size()));
  }
  int replies = 0;
  std::vector<uint8_t> buf(2048);
  while (replies < count) {
    ssize_t n = recv(fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      break;  // timeout: report what arrived
    }
    ++replies;
  }
  close(fd);
  return replies;
}

class EchoServerFixture {
 public:
  explicit EchoServerFixture(ServeMode mode, int batch, size_t slot_bytes = 0)
      : host_(mode, /*reactor_workers=*/2, batch, slot_bytes),
        server_(ControlKind::kSunRpc, "batch-echo") {
    server_.RegisterProcedure(7, 1, [](BytesView args) -> Result<Bytes> {
      return args.ToBytes();
    });
    Result<uint16_t> port = host_.Serve(&server_, 0);
    EXPECT_TRUE(port.ok()) << port.status();
    port_ = port.ok() ? *port : 0;
  }

  uint16_t port() const { return port_; }
  UdpServerHost& host() { return host_; }

 private:
  UdpServerHost host_;
  RpcServer server_;
  uint16_t port_ = 0;
};

TEST(BatchIoTest, BatchedEchoRoundTripsBothServeModes) {
  for (ServeMode mode : {ServeMode::kThreadPerEndpoint, ServeMode::kReactor}) {
    SCOPED_TRACE(mode == ServeMode::kReactor ? "reactor" : "thread");
    EchoServerFixture fixture(mode, /*batch=*/8);
    EXPECT_EQ(BurstEcho(fixture.port(), 32), 32);
    fixture.host().StopAll();
  }
}

TEST(BatchIoTest, OversizedDatagramInBatchIsDroppedNeighborsAnswered) {
  for (ServeMode mode : {ServeMode::kThreadPerEndpoint, ServeMode::kReactor}) {
    SCOPED_TRACE(mode == ServeMode::kReactor ? "reactor" : "thread");
    // 256-byte slots: a jumbo garbage datagram truncates; echo calls fit.
    EchoServerFixture fixture(mode, /*batch=*/8, /*slot_bytes=*/256);

    int fd = socket(AF_INET, SOCK_DGRAM, 0);
    ASSERT_GE(fd, 0);
    Bytes jumbo(1000, 0x5a);
    sockaddr_in addr = Loopback(fixture.port());
    ASSERT_EQ(sendto(fd, jumbo.data(), jumbo.size(), 0, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              static_cast<ssize_t>(jumbo.size()));
    close(fd);

    // The truncated frame is dropped (counted), its batch neighbors answer.
    EXPECT_EQ(BurstEcho(fixture.port(), 16), 16);
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    uint64_t dropped = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      dropped = fixture.host().dropped_by_endpoint()[fixture.port()];
      if (dropped >= 1) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(dropped, 1u);
    fixture.host().StopAll();
  }
}

TEST(BatchIoTest, FaultDecisionsArePerFrameNotPerBatch) {
  FaultConfig config;
  config.seed = 20260808;
  FaultPlan plan;
  plan.endpoint = "local";  // every local serve port
  FaultPhase phase;
  phase.spec.drop = 1.0;  // drop everything: decisions == frames is provable
  plan.phases.push_back(phase);
  config.plans.push_back(plan);
  FaultInjector injector(config);
  InstallGlobalFaultInjector(&injector);

  EchoServerFixture fixture(ServeMode::kThreadPerEndpoint, /*batch=*/8);
  constexpr int kFrames = 24;
  // All dropped: BurstEcho gets zero replies back.
  EXPECT_EQ(BurstEcho(fixture.port(), kFrames), 0);

  // Every frame of every batch must have drawn its own decision; a
  // per-batch decision would leave decisions well short of kFrames.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  FaultStats stats;
  while (std::chrono::steady_clock::now() < deadline) {
    stats = injector.stats();
    if (stats.decisions >= kFrames) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(stats.decisions, static_cast<uint64_t>(kFrames));
  EXPECT_EQ(stats.server_drops, static_cast<uint64_t>(kFrames));
  fixture.host().StopAll();
  InstallGlobalFaultInjector(nullptr);
}

TEST(BatchIoTest, DecisionSequenceMatchesSingleShotServing) {
  // The same traffic against batch=8 and batch=1 servers must consume
  // identical per-endpoint decision streams: pure function of (seed,
  // endpoint, sequence), independent of batch geometry. Serve both on a
  // fixed port one after the other and compare traces.
  auto run = [](int batch, std::vector<std::string>* trace_out) {
    FaultConfig config;
    config.seed = 7;
    FaultPlan plan;
    plan.endpoint = "local";
    FaultPhase phase;
    phase.spec.drop = 1.0;  // swallow everything: no replies to wait on
    plan.phases.push_back(phase);
    config.plans.push_back(plan);
    FaultInjector injector(config);
    injector.set_trace_enabled(true);
    InstallGlobalFaultInjector(&injector);

    EchoServerFixture fixture(ServeMode::kThreadPerEndpoint, batch);
    EXPECT_EQ(BurstEcho(fixture.port(), 12), 0);
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline &&
           injector.stats().decisions < 12) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    fixture.host().StopAll();
    InstallGlobalFaultInjector(nullptr);
    // Traces are "endpoint#sequence:flags"; strip the port (ephemeral,
    // differs between the two servers) down to "#sequence:flags".
    std::vector<std::string> trace = injector.TakeTrace();
    for (std::string& line : trace) {
      size_t hash = line.find('#');
      if (hash != std::string::npos) {
        line = line.substr(hash);
      }
    }
    *trace_out = trace;
  };

  std::vector<std::string> batched, single;
  run(8, &batched);
  run(1, &single);
  ASSERT_EQ(batched.size(), 12u);
  EXPECT_EQ(batched, single);
}

// --- Batched FindNSM-vs-Register storm (TSan coverage) ----------------------

class FixedAddressNsm : public Nsm {
 public:
  FixedAddressNsm(NsmInfo info, uint32_t address)
      : info_(std::move(info)), address_(address) {}

  const NsmInfo& info() const override { return info_; }

  Result<WireValue> Query(const HnsName& name, const WireValue&) override {
    return RecordBuilder().U32("address", address_).Str("host", name.individual).Build();
  }

 private:
  NsmInfo info_;
  uint32_t address_;
};

TEST(BatchIoTest, BatchedFindNsmVsRegisterStorm) {
  // The concurrency_test storm, but explicitly over batched serving: the
  // meta authority answers through recvmmsg/sendmmsg while readers hammer
  // FindNSM against a Register/Unregister loop. Bar: no torn handle, and
  // TSan-clean batched dispatch.
  World world;
  ASSERT_TRUE(world.network().AddHost("metahost", MachineType::kMicroVax, OsType::kUnix).ok());
  BindServerOptions meta_options;
  meta_options.allow_dynamic_update = true;
  meta_options.allow_unspecified_type = true;
  BindServer* meta_bind = BindServer::InstallOn(&world, "metahost", meta_options).value();
  ASSERT_TRUE(meta_bind->AddZone(MetaStore::kMetaZoneOrigin).ok());

  UdpServerHost server_host(DefaultServeMode(), /*reactor_workers=*/0, /*udp_batch=*/8);
  Result<uint16_t> port = server_host.Serve(meta_bind->rpc(), 0);
  ASSERT_TRUE(port.ok()) << port.status();

  UdpTransport transport;
  HnsOptions options;
  options.meta_server_host = "metahost";
  options.composite_cache = true;
  options.cache.negative_ttl_seconds = 1;
  Hns hns(/*world=*/nullptr, "client", &transport, options);
  hns.meta().set_meta_port(*port);

  NsmInfo addr_info;
  addr_info.nsm_name = "AddrNSM";
  addr_info.query_class = kQueryClassHostAddress;
  addr_info.ns_name = "UW-BIND";
  addr_info.host = "metahost";
  addr_info.host_context = "hostctx";
  ASSERT_TRUE(hns.LinkNsm(std::make_shared<FixedAddressNsm>(addr_info, 0x7f000001)).ok());

  NameServiceInfo ns_info;
  ns_info.name = "UW-BIND";
  ns_info.type = "BIND";
  ASSERT_TRUE(hns.RegisterNameService(ns_info).ok());
  ASSERT_TRUE(hns.RegisterContext("batchctx", "UW-BIND").ok());
  ASSERT_TRUE(hns.RegisterContext("hostctx", "UW-BIND").ok());
  ASSERT_TRUE(hns.RegisterNsm(addr_info).ok());

  NsmInfo storm_info;
  storm_info.nsm_name = "BatchNSM";
  storm_info.query_class = kQueryClassHrpcBinding;
  storm_info.ns_name = "UW-BIND";
  storm_info.host = "nsmhost";
  storm_info.host_context = "hostctx";
  storm_info.program = 4242;
  storm_info.version = 1;
  storm_info.port = 999;
  ASSERT_TRUE(hns.RegisterNsm(storm_info).ok());

  HnsName name;
  name.context = "batchctx";
  name.individual = "anything";
  {
    Result<NsmHandle> warm = hns.FindNsm(name, kQueryClassHrpcBinding);
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ(warm->nsm_name, "BatchNSM");
  }

  constexpr int kReaders = 3;
  constexpr int kReadsPerThread = 120;
  std::atomic<int> ok_results{0};
  std::atomic<int> clean_failures{0};
  std::atomic<int> wrong_results{0};

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        Result<NsmHandle> handle = hns.FindNsm(name, kQueryClassHrpcBinding);
        if (handle.ok()) {
          if (handle->nsm_name == "BatchNSM" && handle->binding.program == 4242 &&
              handle->binding.port == 999) {
            ++ok_results;
          } else {
            ++wrong_results;
          }
        } else {
          ++clean_failures;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int round = 0; round < 10; ++round) {
      EXPECT_TRUE(hns.UnregisterNsm("UW-BIND", kQueryClassHrpcBinding).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      EXPECT_TRUE(hns.RegisterNsm(storm_info).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(wrong_results.load(), 0) << "a FindNSM result was torn by invalidation";
  EXPECT_EQ(ok_results.load() + clean_failures.load(), kReaders * kReadsPerThread);
  EXPECT_TRUE(hns.cache().CheckInvariants().ok());
  server_host.StopAll();
}

}  // namespace
}  // namespace hcs
