// Unit tests for src/rpc: control protocols, client/server runtime,
// bindings, portmapper, transports.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/rpc/binding.h"
#include "src/rpc/client.h"
#include "src/rpc/control.h"
#include "src/rpc/portmapper.h"
#include "src/rpc/ports.h"
#include "src/rpc/server.h"
#include "src/rpc/transport.h"
#include "src/wire/xdr.h"

namespace hcs {
namespace {

// --- Control protocols (parameterized over all three) -------------------------

class ControlProtocolTest : public ::testing::TestWithParam<ControlKind> {};

TEST_P(ControlProtocolTest, CallRoundTrip) {
  const ControlProtocol& control = GetControlProtocol(GetParam());
  RpcCall call;
  call.xid = 777;
  call.program = 100003;
  call.version = GetParam() == ControlKind::kRaw ? 1 : 2;
  call.procedure = 6;
  call.args = Bytes{1, 2, 3, 4, 5, 6, 7, 8};

  Result<RpcCall> decoded = control.DecodeCall(control.EncodeCall(call));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // Courier transaction ids are 16-bit.
  uint32_t want_xid = GetParam() == ControlKind::kCourier ? (call.xid & 0xffff) : call.xid;
  EXPECT_EQ(decoded->xid, want_xid);
  EXPECT_EQ(decoded->program, call.program);
  EXPECT_EQ(decoded->procedure, call.procedure);
  EXPECT_EQ(decoded->args, call.args);
}

TEST_P(ControlProtocolTest, SuccessReplyRoundTrip) {
  const ControlProtocol& control = GetControlProtocol(GetParam());
  RpcReplyMsg reply;
  reply.xid = 99;
  reply.results = Bytes{9, 9, 9, 9};
  Result<RpcReplyMsg> decoded = control.DecodeReply(control.EncodeReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->app_status, StatusCode::kOk);
  EXPECT_EQ(decoded->results, reply.results);
}

TEST_P(ControlProtocolTest, ErrorReplyCarriesStatusAcrossTheWire) {
  const ControlProtocol& control = GetControlProtocol(GetParam());
  RpcReplyMsg reply;
  reply.xid = 5;
  reply.app_status = StatusCode::kNotFound;
  reply.error_message = "no such name";
  Result<RpcReplyMsg> decoded = control.DecodeReply(control.EncodeReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->app_status, StatusCode::kNotFound);
  EXPECT_EQ(decoded->error_message, "no such name");
}

TEST_P(ControlProtocolTest, GarbageIsRejected) {
  const ControlProtocol& control = GetControlProtocol(GetParam());
  EXPECT_FALSE(control.DecodeCall(Bytes{0xde, 0xad}).ok());
  EXPECT_FALSE(control.DecodeReply(Bytes{}).ok());
}

TEST_P(ControlProtocolTest, CallAndReplyAreNotInterchangeable) {
  const ControlProtocol& control = GetControlProtocol(GetParam());
  RpcCall call;
  call.xid = 1;
  call.program = 2;
  call.version = 2;
  call.procedure = 3;
  Bytes call_msg = control.EncodeCall(call);
  EXPECT_FALSE(control.DecodeReply(call_msg).ok());
}

INSTANTIATE_TEST_SUITE_P(AllControls, ControlProtocolTest,
                         ::testing::Values(ControlKind::kSunRpc, ControlKind::kCourier,
                                           ControlKind::kRaw),
                         [](const auto& param_info) { return ControlKindName(param_info.param); });

TEST(SunRpcControlTest, RejectsWrongRpcVersion) {
  // Hand-craft a call with rpcvers=3.
  XdrEncoder enc;
  enc.PutUint32(1);  // xid
  enc.PutUint32(0);  // CALL
  enc.PutUint32(3);  // bad rpc version
  enc.PutUint32(100000);
  enc.PutUint32(2);
  enc.PutUint32(0);
  enc.PutUint32(0);
  enc.PutUint32(0);
  enc.PutUint32(0);
  enc.PutUint32(0);
  const ControlProtocol& control = GetControlProtocol(ControlKind::kSunRpc);
  EXPECT_EQ(control.DecodeCall(enc.bytes()).status().code(), StatusCode::kProtocolError);
}

// --- Binding serialization ------------------------------------------------------

TEST(HrpcBindingTest, WireRoundTrip) {
  HrpcBinding b;
  b.service_name = "nfs";
  b.host = "fiji.cs.washington.edu";
  b.address = 0x80950104;
  b.port = 2049;
  b.program = 100003;
  b.version = 2;
  b.data_rep = DataRep::kCourier;
  b.transport = TransportKind::kSpp;
  b.control = ControlKind::kCourier;
  b.bind_protocol = BindProtocol::kCourierCh;

  Result<HrpcBinding> decoded = HrpcBinding::FromWire(b.ToWire());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, b);
}

TEST(HrpcBindingTest, RejectsOutOfRangeComponents) {
  WireValue bad = RecordBuilder()
                      .Str("service", "s")
                      .Str("host", "h")
                      .U32("address", 0)
                      .U32("port", 70000)  // > 65535
                      .U32("program", 1)
                      .U32("version", 1)
                      .U32("data_rep", 0)
                      .U32("transport", 0)
                      .U32("control", 0)
                      .U32("bind_protocol", 0)
                      .Build();
  EXPECT_EQ(HrpcBinding::FromWire(bad).status().code(), StatusCode::kProtocolError);

  WireValue bad_enum = RecordBuilder()
                           .Str("service", "s")
                           .Str("host", "h")
                           .U32("address", 0)
                           .U32("port", 1)
                           .U32("program", 1)
                           .U32("version", 1)
                           .U32("data_rep", 9)  // no such data rep
                           .U32("transport", 0)
                           .U32("control", 0)
                           .U32("bind_protocol", 0)
                           .Build();
  EXPECT_EQ(HrpcBinding::FromWire(bad_enum).status().code(), StatusCode::kProtocolError);
}

// --- Client/server over the simulated network ------------------------------------

class RpcRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(world_.network().AddHost("client", MachineType::kSun, OsType::kUnix).ok());
    ASSERT_TRUE(world_.network().AddHost("server", MachineType::kSun, OsType::kUnix).ok());
  }

  HrpcBinding MakeBinding(ControlKind control, uint16_t port, uint32_t program) {
    HrpcBinding b;
    b.service_name = "test";
    b.host = "server";
    b.port = port;
    b.program = program;
    b.version = 2;
    b.control = control;
    return b;
  }

  World world_;
};

TEST_F(RpcRuntimeTest, EndToEndCallAllProtocols) {
  for (ControlKind kind : {ControlKind::kSunRpc, ControlKind::kCourier, ControlKind::kRaw}) {
    SCOPED_TRACE(ControlKindName(kind));
    uint16_t port = static_cast<uint16_t>(1000 + static_cast<int>(kind));
    RpcServer server(kind, "test");
    server.RegisterProcedure(42, 1, [](const Bytes& args) -> Result<Bytes> {
      Bytes out = args;
      out.push_back(0xff);
      return out;
    });
    ASSERT_TRUE(world_.RegisterService("server", port, &server).ok());

    SimNetTransport transport(&world_);
    RpcClient client(&world_, "client", &transport);
    Result<Bytes> reply = client.Call(MakeBinding(kind, port, 42), 1, Bytes{1, 2});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(*reply, (Bytes{1, 2, 0xff}));
  }
}

TEST_F(RpcRuntimeTest, UnknownProcedureIsUnimplemented) {
  RpcServer server(ControlKind::kRaw, "test");
  ASSERT_TRUE(world_.RegisterService("server", 1000, &server).ok());
  SimNetTransport transport(&world_);
  RpcClient client(&world_, "client", &transport);
  Result<Bytes> reply = client.Call(MakeBinding(ControlKind::kRaw, 1000, 42), 7, Bytes{});
  EXPECT_EQ(reply.status().code(), StatusCode::kUnimplemented);
}

TEST_F(RpcRuntimeTest, HandlerErrorRoundTripsAsStatus) {
  RpcServer server(ControlKind::kSunRpc, "test");
  server.RegisterProcedure(42, 1, [](const Bytes&) -> Result<Bytes> {
    return PermissionDeniedError("credentials rejected");
  });
  ASSERT_TRUE(world_.RegisterService("server", 1000, &server).ok());
  SimNetTransport transport(&world_);
  RpcClient client(&world_, "client", &transport);
  Result<Bytes> reply = client.Call(MakeBinding(ControlKind::kSunRpc, 1000, 42), 1, Bytes{});
  EXPECT_EQ(reply.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(reply.status().message(), "credentials rejected");
}

TEST_F(RpcRuntimeTest, CourierCallsCostMoreThanSunRpc) {
  for (ControlKind kind : {ControlKind::kSunRpc, ControlKind::kCourier}) {
    uint16_t port = static_cast<uint16_t>(1000 + static_cast<int>(kind));
    auto server = std::make_unique<RpcServer>(kind, "t");
    server->RegisterProcedure(42, 1, [](const Bytes& a) -> Result<Bytes> { return a; });
    RpcServer* raw = world_.OwnService(std::move(server));
    ASSERT_TRUE(world_.RegisterService("server", port, raw).ok());
  }
  SimNetTransport transport(&world_);
  RpcClient client(&world_, "client", &transport);

  double t0 = world_.clock().NowMs();
  (void)client.Call(MakeBinding(ControlKind::kSunRpc, 1000, 42), 1, Bytes{});  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double sun = world_.clock().NowMs() - t0;
  t0 = world_.clock().NowMs();
  (void)client.Call(MakeBinding(ControlKind::kCourier, 1001, 42), 1, Bytes{});  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double courier = world_.clock().NowMs() - t0;
  EXPECT_GT(courier, sun);
}

TEST_F(RpcRuntimeTest, LoopbackTransportWorksWithoutAWorld) {
  RpcServer server(ControlKind::kRaw, "test");
  server.RegisterProcedure(42, 1, [](const Bytes& a) -> Result<Bytes> { return a; });
  LoopbackTransport loopback;
  ASSERT_TRUE(loopback.Register(1000, &server).ok());
  EXPECT_EQ(loopback.Register(1000, &server).code(), StatusCode::kAlreadyExists);

  RpcClient client(/*world=*/nullptr, "anywhere", &loopback);
  Result<Bytes> reply = client.Call(MakeBinding(ControlKind::kRaw, 1000, 42), 1, Bytes{5});
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, Bytes{5});

  loopback.Unregister(1000);
  EXPECT_EQ(client.Call(MakeBinding(ControlKind::kRaw, 1000, 42), 1, Bytes{}).status().code(),
            StatusCode::kUnavailable);
}

// --- Portmapper --------------------------------------------------------------------

TEST_F(RpcRuntimeTest, PortmapperSetGetUnset) {
  PortMapper* pm = PortMapper::InstallOn(&world_, "server").value();
  SimNetTransport transport(&world_);
  RpcClient client(&world_, "client", &transport);

  // Not registered yet.
  EXPECT_EQ(PortMapper::GetPort(&client, "server", 100003, 2, kIpProtoUdp).status().code(),
            StatusCode::kNotFound);

  pm->SetMapping(100003, 2, kIpProtoUdp, 2049);
  EXPECT_EQ(PortMapper::GetPort(&client, "server", 100003, 2, kIpProtoUdp).value(), 2049);
  // Different protocol is a different mapping.
  EXPECT_FALSE(PortMapper::GetPort(&client, "server", 100003, 2, kIpProtoTcp).ok());

  pm->UnsetMapping(100003, 2, kIpProtoUdp);
  EXPECT_FALSE(PortMapper::GetPort(&client, "server", 100003, 2, kIpProtoUdp).ok());
}

TEST_F(RpcRuntimeTest, PortmapperSetViaRpc) {
  (void)PortMapper::InstallOn(&world_, "server").value();  // hcs:ignore-status(install helper; value() aborts on failure, handle unused)
  SimNetTransport transport(&world_);
  RpcClient client(&world_, "client", &transport);

  HrpcBinding pmap;
  pmap.host = "server";
  pmap.port = kPortmapperPort;
  pmap.program = kPortmapperProgram;
  pmap.version = 2;
  pmap.control = ControlKind::kSunRpc;

  XdrEncoder enc;
  enc.PutUint32(300001);
  enc.PutUint32(1);
  enc.PutUint32(kIpProtoUdp);
  enc.PutUint32(5555);
  Result<Bytes> set_reply = client.Call(pmap, kPmapProcSet, enc.Take());
  ASSERT_TRUE(set_reply.ok()) << set_reply.status();
  XdrDecoder dec(*set_reply);
  EXPECT_EQ(dec.GetUint32().value(), 1u);  // freshly registered

  EXPECT_EQ(PortMapper::GetPort(&client, "server", 300001, 1, kIpProtoUdp).value(), 5555);
}


// --- RetryPolicy: the budgeted-call retry schedule -----------------------------

TEST(RetryPolicyTest, AttemptBudgetsDoubleFromBaseAndCapAtSixteenX) {
  constexpr int64_t kPlenty = int64_t{1} << 40;
  EXPECT_EQ(RetryPolicy::AttemptBudgetMs(0, kPlenty), 100);
  EXPECT_EQ(RetryPolicy::AttemptBudgetMs(1, kPlenty), 200);
  EXPECT_EQ(RetryPolicy::AttemptBudgetMs(2, kPlenty), 400);
  EXPECT_EQ(RetryPolicy::AttemptBudgetMs(3, kPlenty), 800);
  EXPECT_EQ(RetryPolicy::AttemptBudgetMs(4, kPlenty), 1600);
  EXPECT_EQ(RetryPolicy::AttemptBudgetMs(5, kPlenty), 1600) << "doubling caps at 16x base";
  EXPECT_EQ(RetryPolicy::AttemptBudgetMs(40, kPlenty), 1600);
  // Never beyond the remaining overall budget.
  EXPECT_EQ(RetryPolicy::AttemptBudgetMs(0, 40), 40);
  EXPECT_EQ(RetryPolicy::AttemptBudgetMs(3, 150), 150);
}

TEST(RetryPolicyTest, BackoffDoublesToTheCap) {
  int64_t backoff = RetryPolicy::kBackoffBaseMs;
  std::vector<int64_t> schedule;
  for (int i = 0; i < 8; ++i) {
    schedule.push_back(backoff);
    backoff = RetryPolicy::NextBackoffMs(backoff);
  }
  EXPECT_EQ(schedule, (std::vector<int64_t>{10, 20, 40, 80, 160, 250, 250, 250}));
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  for (uint64_t trace : {uint64_t{1}, uint64_t{0xdeadbeef}, uint64_t{42}}) {
    for (uint32_t attempt = 0; attempt < 6; ++attempt) {
      int64_t first = RetryPolicy::JitteredBackoffMs(trace, attempt, 40, 1000);
      int64_t again = RetryPolicy::JitteredBackoffMs(trace, attempt, 40, 1000);
      EXPECT_EQ(first, again) << "a given (trace, attempt) must replay its jitter";
      EXPECT_GE(first, 20) << "at least backoff/2";
      EXPECT_LE(first, 40) << "at most the full backoff";
    }
  }
  // The schedule varies across attempts (it is jitter, not a constant).
  std::set<int64_t> distinct;
  for (uint32_t attempt = 0; attempt < 16; ++attempt) {
    distinct.insert(RetryPolicy::JitteredBackoffMs(7, attempt, 200, 10000));
  }
  EXPECT_GT(distinct.size(), 1u);
  // Capped by the remaining budget.
  EXPECT_EQ(RetryPolicy::JitteredBackoffMs(1, 0, 40, 7), 7);
}

TEST(RetryPolicyTest, MaxAttemptsMatchesTheMinimumSleepSchedule) {
  EXPECT_EQ(RetryPolicy::MaxAttempts(0), 1u);
  EXPECT_EQ(RetryPolicy::MaxAttempts(-5), 1u);
  // The minimum post-attempt sleeps run 5, 10, 20, 40, 80, 125, 125, ... ms
  // (backoff/2 with the 250 ms cap): a budget of 5 ms is spent after the
  // first sleep, 6 ms admits exactly one more attempt, and so on.
  EXPECT_EQ(RetryPolicy::MaxAttempts(1), 1u);
  EXPECT_EQ(RetryPolicy::MaxAttempts(5), 1u);
  EXPECT_EQ(RetryPolicy::MaxAttempts(6), 2u);
  EXPECT_EQ(RetryPolicy::MaxAttempts(100), 5u);
  EXPECT_EQ(RetryPolicy::MaxAttempts(2000), 20u);
  uint32_t previous = 0;
  for (int64_t budget = 1; budget <= 600; ++budget) {
    uint32_t attempts = RetryPolicy::MaxAttempts(budget);
    EXPECT_GE(attempts, previous) << "budget " << budget;
    previous = attempts;
  }
}

// A budget-capable transport that fails the first `fail_first` exchanges
// with kTimeout and then answers properly, recording every per-attempt
// budget the client granted.
class FlakyBudgetTransport : public Transport {
 public:
  explicit FlakyBudgetTransport(int fail_first) : fail_first_(fail_first) {}

  Result<Bytes> RoundTrip(const std::string& from_host, const std::string& to_host,
                          uint16_t port, const Bytes& message) override {
    return RoundTripWithBudget(from_host, to_host, port, message, -1);
  }

  Result<Bytes> RoundTripWithBudget(const std::string&, const std::string&, uint16_t,
                                    const Bytes& message, int64_t budget_ms) override {
    budgets_.push_back(budget_ms);
    if (static_cast<int>(budgets_.size()) <= fail_first_) {
      return TimeoutError("injected exchange timeout");
    }
    const ControlProtocol& control = GetControlProtocol(ControlKind::kRaw);
    HCS_ASSIGN_OR_RETURN(RpcCall call, control.DecodeCall(message));
    RpcReplyMsg reply;
    reply.xid = call.xid;
    reply.results = call.args;
    return control.EncodeReply(reply);
  }

  bool SupportsBudget() const override { return true; }

  const std::vector<int64_t>& budgets() const { return budgets_; }

 private:
  int fail_first_;
  std::vector<int64_t> budgets_;
};

HrpcBinding RawLoopbackBinding() {
  HrpcBinding b;
  b.host = "flaky";
  b.port = 99;
  b.program = 7;
  b.version = 1;
  b.control = ControlKind::kRaw;
  return b;
}

TEST(RetryPolicyTest, CallRetriesOnTheExactScheduleAndSucceeds) {
  FlakyBudgetTransport transport(/*fail_first=*/2);
  RpcClient client(/*world=*/nullptr, "client", &transport);
  RpcCallInfo info;
  Result<Bytes> reply = client.Call(RawLoopbackBinding(), 1, Bytes{5, 6},
                                    RequestContext::WithTimeout(5000), &info);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, (Bytes{5, 6}));
  EXPECT_EQ(info.attempts, 3u);
  EXPECT_EQ(info.retries, 2u);
  ASSERT_EQ(transport.budgets().size(), 3u);
  // The first attempts see an almost-untouched budget, so their transport
  // budgets are the policy's doubling sequence exactly.
  EXPECT_EQ(transport.budgets()[0], 100);
  EXPECT_EQ(transport.budgets()[1], 200);
  EXPECT_LE(transport.budgets()[2], 400);
  EXPECT_GT(transport.budgets()[2], 0);
}

TEST(RetryPolicyTest, CallStopsAtTheDeadlineWithinMaxAttempts) {
  FlakyBudgetTransport transport(/*fail_first=*/1 << 20);  // never succeeds
  RpcClient client(/*world=*/nullptr, "client", &transport);
  constexpr int64_t kBudgetMs = 300;
  RpcCallInfo info;
  Result<Bytes> reply = client.Call(RawLoopbackBinding(), 1, Bytes{1},
                                    RequestContext::WithTimeout(kBudgetMs), &info);
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
  EXPECT_GE(info.attempts, 2u) << "the budget admits retries";
  EXPECT_LE(info.attempts, RetryPolicy::MaxAttempts(kBudgetMs))
      << "attempts beyond the budget's admission are forbidden";
  EXPECT_EQ(info.attempts, static_cast<uint32_t>(transport.budgets().size()));
  for (size_t i = 0; i < transport.budgets().size(); ++i) {
    EXPECT_LE(transport.budgets()[i],
              RetryPolicy::AttemptBudgetMs(static_cast<uint32_t>(i), kBudgetMs))
        << "attempt " << i;
  }
}

TEST(RetryPolicyTest, NoDeadlineMeansTheSeedsSingleAttempt) {
  FlakyBudgetTransport transport(/*fail_first=*/1 << 20);
  RpcClient client(/*world=*/nullptr, "client", &transport);
  RpcCallInfo info;
  Result<Bytes> reply = client.Call(RawLoopbackBinding(), 1, Bytes{1},
                                    RequestContext{}, &info);
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(info.attempts, 1u);
  EXPECT_EQ(info.retries, 0u);
  EXPECT_EQ(transport.budgets().size(), 1u);
}

}  // namespace
}  // namespace hcs
