// Unit tests for src/rpc: control protocols, client/server runtime,
// bindings, portmapper, transports.

#include <gtest/gtest.h>

#include "src/rpc/binding.h"
#include "src/rpc/client.h"
#include "src/rpc/control.h"
#include "src/rpc/portmapper.h"
#include "src/rpc/ports.h"
#include "src/rpc/server.h"
#include "src/rpc/transport.h"
#include "src/wire/xdr.h"

namespace hcs {
namespace {

// --- Control protocols (parameterized over all three) -------------------------

class ControlProtocolTest : public ::testing::TestWithParam<ControlKind> {};

TEST_P(ControlProtocolTest, CallRoundTrip) {
  const ControlProtocol& control = GetControlProtocol(GetParam());
  RpcCall call;
  call.xid = 777;
  call.program = 100003;
  call.version = GetParam() == ControlKind::kRaw ? 1 : 2;
  call.procedure = 6;
  call.args = Bytes{1, 2, 3, 4, 5, 6, 7, 8};

  Result<RpcCall> decoded = control.DecodeCall(control.EncodeCall(call));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // Courier transaction ids are 16-bit.
  uint32_t want_xid = GetParam() == ControlKind::kCourier ? (call.xid & 0xffff) : call.xid;
  EXPECT_EQ(decoded->xid, want_xid);
  EXPECT_EQ(decoded->program, call.program);
  EXPECT_EQ(decoded->procedure, call.procedure);
  EXPECT_EQ(decoded->args, call.args);
}

TEST_P(ControlProtocolTest, SuccessReplyRoundTrip) {
  const ControlProtocol& control = GetControlProtocol(GetParam());
  RpcReplyMsg reply;
  reply.xid = 99;
  reply.results = Bytes{9, 9, 9, 9};
  Result<RpcReplyMsg> decoded = control.DecodeReply(control.EncodeReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->app_status, StatusCode::kOk);
  EXPECT_EQ(decoded->results, reply.results);
}

TEST_P(ControlProtocolTest, ErrorReplyCarriesStatusAcrossTheWire) {
  const ControlProtocol& control = GetControlProtocol(GetParam());
  RpcReplyMsg reply;
  reply.xid = 5;
  reply.app_status = StatusCode::kNotFound;
  reply.error_message = "no such name";
  Result<RpcReplyMsg> decoded = control.DecodeReply(control.EncodeReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->app_status, StatusCode::kNotFound);
  EXPECT_EQ(decoded->error_message, "no such name");
}

TEST_P(ControlProtocolTest, GarbageIsRejected) {
  const ControlProtocol& control = GetControlProtocol(GetParam());
  EXPECT_FALSE(control.DecodeCall(Bytes{0xde, 0xad}).ok());
  EXPECT_FALSE(control.DecodeReply(Bytes{}).ok());
}

TEST_P(ControlProtocolTest, CallAndReplyAreNotInterchangeable) {
  const ControlProtocol& control = GetControlProtocol(GetParam());
  RpcCall call;
  call.xid = 1;
  call.program = 2;
  call.version = 2;
  call.procedure = 3;
  Bytes call_msg = control.EncodeCall(call);
  EXPECT_FALSE(control.DecodeReply(call_msg).ok());
}

INSTANTIATE_TEST_SUITE_P(AllControls, ControlProtocolTest,
                         ::testing::Values(ControlKind::kSunRpc, ControlKind::kCourier,
                                           ControlKind::kRaw),
                         [](const auto& param_info) { return ControlKindName(param_info.param); });

TEST(SunRpcControlTest, RejectsWrongRpcVersion) {
  // Hand-craft a call with rpcvers=3.
  XdrEncoder enc;
  enc.PutUint32(1);  // xid
  enc.PutUint32(0);  // CALL
  enc.PutUint32(3);  // bad rpc version
  enc.PutUint32(100000);
  enc.PutUint32(2);
  enc.PutUint32(0);
  enc.PutUint32(0);
  enc.PutUint32(0);
  enc.PutUint32(0);
  enc.PutUint32(0);
  const ControlProtocol& control = GetControlProtocol(ControlKind::kSunRpc);
  EXPECT_EQ(control.DecodeCall(enc.bytes()).status().code(), StatusCode::kProtocolError);
}

// --- Binding serialization ------------------------------------------------------

TEST(HrpcBindingTest, WireRoundTrip) {
  HrpcBinding b;
  b.service_name = "nfs";
  b.host = "fiji.cs.washington.edu";
  b.address = 0x80950104;
  b.port = 2049;
  b.program = 100003;
  b.version = 2;
  b.data_rep = DataRep::kCourier;
  b.transport = TransportKind::kSpp;
  b.control = ControlKind::kCourier;
  b.bind_protocol = BindProtocol::kCourierCh;

  Result<HrpcBinding> decoded = HrpcBinding::FromWire(b.ToWire());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, b);
}

TEST(HrpcBindingTest, RejectsOutOfRangeComponents) {
  WireValue bad = RecordBuilder()
                      .Str("service", "s")
                      .Str("host", "h")
                      .U32("address", 0)
                      .U32("port", 70000)  // > 65535
                      .U32("program", 1)
                      .U32("version", 1)
                      .U32("data_rep", 0)
                      .U32("transport", 0)
                      .U32("control", 0)
                      .U32("bind_protocol", 0)
                      .Build();
  EXPECT_EQ(HrpcBinding::FromWire(bad).status().code(), StatusCode::kProtocolError);

  WireValue bad_enum = RecordBuilder()
                           .Str("service", "s")
                           .Str("host", "h")
                           .U32("address", 0)
                           .U32("port", 1)
                           .U32("program", 1)
                           .U32("version", 1)
                           .U32("data_rep", 9)  // no such data rep
                           .U32("transport", 0)
                           .U32("control", 0)
                           .U32("bind_protocol", 0)
                           .Build();
  EXPECT_EQ(HrpcBinding::FromWire(bad_enum).status().code(), StatusCode::kProtocolError);
}

// --- Client/server over the simulated network ------------------------------------

class RpcRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(world_.network().AddHost("client", MachineType::kSun, OsType::kUnix).ok());
    ASSERT_TRUE(world_.network().AddHost("server", MachineType::kSun, OsType::kUnix).ok());
  }

  HrpcBinding MakeBinding(ControlKind control, uint16_t port, uint32_t program) {
    HrpcBinding b;
    b.service_name = "test";
    b.host = "server";
    b.port = port;
    b.program = program;
    b.version = 2;
    b.control = control;
    return b;
  }

  World world_;
};

TEST_F(RpcRuntimeTest, EndToEndCallAllProtocols) {
  for (ControlKind kind : {ControlKind::kSunRpc, ControlKind::kCourier, ControlKind::kRaw}) {
    SCOPED_TRACE(ControlKindName(kind));
    uint16_t port = static_cast<uint16_t>(1000 + static_cast<int>(kind));
    RpcServer server(kind, "test");
    server.RegisterProcedure(42, 1, [](const Bytes& args) -> Result<Bytes> {
      Bytes out = args;
      out.push_back(0xff);
      return out;
    });
    ASSERT_TRUE(world_.RegisterService("server", port, &server).ok());

    SimNetTransport transport(&world_);
    RpcClient client(&world_, "client", &transport);
    Result<Bytes> reply = client.Call(MakeBinding(kind, port, 42), 1, Bytes{1, 2});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(*reply, (Bytes{1, 2, 0xff}));
  }
}

TEST_F(RpcRuntimeTest, UnknownProcedureIsUnimplemented) {
  RpcServer server(ControlKind::kRaw, "test");
  ASSERT_TRUE(world_.RegisterService("server", 1000, &server).ok());
  SimNetTransport transport(&world_);
  RpcClient client(&world_, "client", &transport);
  Result<Bytes> reply = client.Call(MakeBinding(ControlKind::kRaw, 1000, 42), 7, Bytes{});
  EXPECT_EQ(reply.status().code(), StatusCode::kUnimplemented);
}

TEST_F(RpcRuntimeTest, HandlerErrorRoundTripsAsStatus) {
  RpcServer server(ControlKind::kSunRpc, "test");
  server.RegisterProcedure(42, 1, [](const Bytes&) -> Result<Bytes> {
    return PermissionDeniedError("credentials rejected");
  });
  ASSERT_TRUE(world_.RegisterService("server", 1000, &server).ok());
  SimNetTransport transport(&world_);
  RpcClient client(&world_, "client", &transport);
  Result<Bytes> reply = client.Call(MakeBinding(ControlKind::kSunRpc, 1000, 42), 1, Bytes{});
  EXPECT_EQ(reply.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(reply.status().message(), "credentials rejected");
}

TEST_F(RpcRuntimeTest, CourierCallsCostMoreThanSunRpc) {
  for (ControlKind kind : {ControlKind::kSunRpc, ControlKind::kCourier}) {
    uint16_t port = static_cast<uint16_t>(1000 + static_cast<int>(kind));
    auto server = std::make_unique<RpcServer>(kind, "t");
    server->RegisterProcedure(42, 1, [](const Bytes& a) -> Result<Bytes> { return a; });
    RpcServer* raw = world_.OwnService(std::move(server));
    ASSERT_TRUE(world_.RegisterService("server", port, raw).ok());
  }
  SimNetTransport transport(&world_);
  RpcClient client(&world_, "client", &transport);

  double t0 = world_.clock().NowMs();
  (void)client.Call(MakeBinding(ControlKind::kSunRpc, 1000, 42), 1, Bytes{});  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double sun = world_.clock().NowMs() - t0;
  t0 = world_.clock().NowMs();
  (void)client.Call(MakeBinding(ControlKind::kCourier, 1001, 42), 1, Bytes{});  // hcs:ignore-status(timing probe; only the clock delta is asserted)
  double courier = world_.clock().NowMs() - t0;
  EXPECT_GT(courier, sun);
}

TEST_F(RpcRuntimeTest, LoopbackTransportWorksWithoutAWorld) {
  RpcServer server(ControlKind::kRaw, "test");
  server.RegisterProcedure(42, 1, [](const Bytes& a) -> Result<Bytes> { return a; });
  LoopbackTransport loopback;
  ASSERT_TRUE(loopback.Register(1000, &server).ok());
  EXPECT_EQ(loopback.Register(1000, &server).code(), StatusCode::kAlreadyExists);

  RpcClient client(/*world=*/nullptr, "anywhere", &loopback);
  Result<Bytes> reply = client.Call(MakeBinding(ControlKind::kRaw, 1000, 42), 1, Bytes{5});
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(*reply, Bytes{5});

  loopback.Unregister(1000);
  EXPECT_EQ(client.Call(MakeBinding(ControlKind::kRaw, 1000, 42), 1, Bytes{}).status().code(),
            StatusCode::kUnavailable);
}

// --- Portmapper --------------------------------------------------------------------

TEST_F(RpcRuntimeTest, PortmapperSetGetUnset) {
  PortMapper* pm = PortMapper::InstallOn(&world_, "server").value();
  SimNetTransport transport(&world_);
  RpcClient client(&world_, "client", &transport);

  // Not registered yet.
  EXPECT_EQ(PortMapper::GetPort(&client, "server", 100003, 2, kIpProtoUdp).status().code(),
            StatusCode::kNotFound);

  pm->SetMapping(100003, 2, kIpProtoUdp, 2049);
  EXPECT_EQ(PortMapper::GetPort(&client, "server", 100003, 2, kIpProtoUdp).value(), 2049);
  // Different protocol is a different mapping.
  EXPECT_FALSE(PortMapper::GetPort(&client, "server", 100003, 2, kIpProtoTcp).ok());

  pm->UnsetMapping(100003, 2, kIpProtoUdp);
  EXPECT_FALSE(PortMapper::GetPort(&client, "server", 100003, 2, kIpProtoUdp).ok());
}

TEST_F(RpcRuntimeTest, PortmapperSetViaRpc) {
  (void)PortMapper::InstallOn(&world_, "server").value();  // hcs:ignore-status(install helper; value() aborts on failure, handle unused)
  SimNetTransport transport(&world_);
  RpcClient client(&world_, "client", &transport);

  HrpcBinding pmap;
  pmap.host = "server";
  pmap.port = kPortmapperPort;
  pmap.program = kPortmapperProgram;
  pmap.version = 2;
  pmap.control = ControlKind::kSunRpc;

  XdrEncoder enc;
  enc.PutUint32(300001);
  enc.PutUint32(1);
  enc.PutUint32(kIpProtoUdp);
  enc.PutUint32(5555);
  Result<Bytes> set_reply = client.Call(pmap, kPmapProcSet, enc.Take());
  ASSERT_TRUE(set_reply.ok()) << set_reply.status();
  XdrDecoder dec(*set_reply);
  EXPECT_EQ(dec.GetUint32().value(), 1u);  // freshly registered

  EXPECT_EQ(PortMapper::GetPort(&client, "server", 300001, 1, kIpProtoUdp).value(), 5555);
}

}  // namespace
}  // namespace hcs
