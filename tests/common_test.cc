// Unit tests for src/common: Status, Result, strings, bytes, rand.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rand.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/strings.h"

namespace hcs {
namespace {

// --- Status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("no such host");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such host");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: no such host");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(TimeoutError("").code(), StatusCode::kTimeout);
  EXPECT_EQ(ProtocolError("").code(), StatusCode::kProtocolError);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == TimeoutError("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return TimeoutError("slow"); };
  auto wrapper = [&]() -> Status {
    HCS_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kTimeout);
}

// --- Result -----------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsAProgrammingErrorNotASilentEmpty) {
  Result<int> r{Status::Ok()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool ok) -> Result<std::string> {
    if (ok) {
      return std::string("data");
    }
    return UnavailableError("down");
  };
  auto consumer = [&](bool ok) -> Result<size_t> {
    HCS_ASSIGN_OR_RETURN(std::string s, producer(ok));
    return s.size();
  };
  EXPECT_EQ(*consumer(true), 4u);
  EXPECT_EQ(consumer(false).status().code(), StatusCode::kUnavailable);
}

// --- strings ------------------------------------------------------------------

TEST(StringsTest, SplitBasics) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), std::vector<std::string>{});
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(StrSplit("one", ','), std::vector<std::string>{"one"});
}

TEST(StringsTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"ctx", "bind", "hns"};
  EXPECT_EQ(StrJoin(parts, "."), "ctx.bind.hns");
  EXPECT_EQ(StrSplit(StrJoin(parts, "."), '.'), parts);
  EXPECT_EQ(StrJoin({}, "."), "");
}

TEST(StringsTest, CaseFoldingIsAsciiOnly) {
  EXPECT_EQ(AsciiToLower("Fiji.CS.Washington.EDU"), "fiji.cs.washington.edu");
  EXPECT_TRUE(EqualsIgnoreCase("BIND", "bind"));
  EXPECT_FALSE(EqualsIgnoreCase("BIND", "bin"));
  EXPECT_FALSE(EqualsIgnoreCase("BIND", "bine"));
}

TEST(StringsTest, ParseU32AcceptsOnlyInRangeDecimals) {
  EXPECT_EQ(ParseU32("0").value(), 0u);
  EXPECT_EQ(ParseU32("4294967295").value(), 0xffffffffu);
  EXPECT_EQ(ParseU32("00042").value(), 42u);
  for (const char* bad : {"", "-1", "+1", " 1", "1 ", "4294967296",
                          "99999999999999999999", "0x10", "1.5", "abc"}) {
    EXPECT_EQ(ParseU32(bad).status().code(), StatusCode::kInvalidArgument)
        << "input: \"" << bad << "\"";
  }
}

TEST(StringsTest, Affixes) {
  EXPECT_TRUE(StartsWith("ctx.bind.hns", "ctx."));
  EXPECT_FALSE(StartsWith("ctx", "ctx."));
  EXPECT_TRUE(EndsWith("fiji.cs.washington.edu", ".edu"));
  EXPECT_FALSE(EndsWith("edu", ".edu"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s:%d", "host", 53), "host:53");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// --- bytes ----------------------------------------------------------------------

TEST(BytesTest, HexDumpTruncates) {
  Bytes data(100, 0xab);
  std::string dump = HexDump(data, 4);
  EXPECT_TRUE(StartsWith(dump, "ab ab ab ab"));
  EXPECT_NE(dump.find("100 bytes total"), std::string::npos);
}

TEST(BytesTest, StringRoundTrip) {
  std::string s = "hello\0world";
  EXPECT_EQ(StringFromBytes(BytesFromString(s)), s);
}

// --- rand ------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, IdentifierShape) {
  Rng rng(13);
  std::string id = rng.Identifier(12);
  EXPECT_EQ(id.size(), 12u);
  for (char c : id) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace hcs
