// Invariants of the assembled testbed world (the fixture every other suite
// leans on), plus the meta-store inventory API.

#include <gtest/gtest.h>

#include <set>

#include "src/common/strings.h"
#include "src/rpc/ports.h"
#include "src/testbed/testbed.h"

namespace hcs {
namespace {

TEST(TestbedTest, AllExpectedServicesAreListening) {
  Testbed bed;
  World& world = bed.world();
  EXPECT_TRUE(world.HasService(kMetaBindHost, kBindPort));
  EXPECT_TRUE(world.HasService(kMetaSecondaryHost, kBindPort));
  EXPECT_TRUE(world.HasService(kPublicBindHost, kBindPort));
  EXPECT_TRUE(world.HasService(kChServerHost, kClearinghousePort));
  EXPECT_TRUE(world.HasService(kSunServerHost, kPortmapperPort));
  EXPECT_TRUE(world.HasService(kSunServerHost, kDesiredServicePort));
  EXPECT_TRUE(world.HasService(kXeroxServerHost, kPrintServicePort));
  EXPECT_TRUE(world.HasService(kHnsServerHost, kHnsServerPort));
  EXPECT_TRUE(world.HasService(kAgentHost, kAgentPort));
  for (uint16_t port = 710; port <= 719; ++port) {
    EXPECT_TRUE(world.HasService(kNsmServerHost, port)) << "NSM port " << port;
  }
}

TEST(TestbedTest, ClockAndStatsStartAtZero) {
  Testbed bed;
  EXPECT_EQ(bed.world().clock().Now(), 0);
  EXPECT_EQ(bed.world().stats().total_messages, 0u);
}

TEST(TestbedTest, LinkedNsmSetCoversAllQueryClassPairs) {
  Testbed bed;
  std::vector<std::shared_ptr<Nsm>> nsms = bed.MakeLinkedNsms(kClientHost);
  EXPECT_EQ(nsms.size(), 10u);
  std::set<std::string> pairs;
  for (const auto& nsm : nsms) {
    pairs.insert(nsm->info().ns_name + "|" + nsm->info().query_class);
    EXPECT_FALSE(nsm->info().nsm_name.empty());
    EXPECT_NE(nsm->info().port, 0);
  }
  EXPECT_EQ(pairs.size(), 10u) << "one NSM per (name service, query class)";
}

TEST(TestbedTest, InventoryListsEverythingRegistered) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Result<MetaStore::Inventory> inventory =
      client.session->local_hns()->meta().TakeInventory();
  ASSERT_TRUE(inventory.ok()) << inventory.status();

  EXPECT_EQ(inventory->name_services.size(), 2u);
  EXPECT_EQ(inventory->contexts.size(), 8u);
  EXPECT_EQ(inventory->nsms.size(), 10u);

  // Spot checks.
  bool found_binding_nsm = false;
  for (const NsmInfo& nsm : inventory->nsms) {
    if (EqualsIgnoreCase(nsm.nsm_name, kNsmBindingBind)) {
      found_binding_nsm = true;
      EXPECT_EQ(nsm.port, 711);
      EXPECT_TRUE(EqualsIgnoreCase(nsm.host, kNsmServerHost));
    }
  }
  EXPECT_TRUE(found_binding_nsm);

  bool found_bind_ctx = false;
  for (const auto& [context, ns] : inventory->contexts) {
    if (EqualsIgnoreCase(context, kContextBind)) {
      found_bind_ctx = true;
      EXPECT_TRUE(EqualsIgnoreCase(ns, kNsBind));
    }
  }
  EXPECT_TRUE(found_bind_ctx);
}

TEST(TestbedTest, InventoryTracksRuntimeRegistration) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  MetaStore& meta = client.session->local_hns()->meta();
  size_t nsms_before = meta.TakeInventory().value().nsms.size();

  NsmInfo info = bed.MailboxBindInfo();
  info.nsm_name = "ExtraNSM";
  info.query_class = "ExtraQueryClass";
  ASSERT_TRUE(meta.RegisterNsm(info).ok());
  EXPECT_EQ(meta.TakeInventory().value().nsms.size(), nsms_before + 1);

  ASSERT_TRUE(meta.UnregisterNsm(info.ns_name, info.query_class).ok());
  EXPECT_EQ(meta.TakeInventory().value().nsms.size(), nsms_before);
}

TEST(TestbedTest, EveryHostResolvesThroughItsWorld) {
  Testbed bed;
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  Hns* hns = client.session->local_hns();
  // Every .cs.washington.edu host is resolvable through BIND...
  for (const HostInfo& host : bed.world().network().hosts()) {
    std::string lower = AsciiToLower(host.name);
    if (EndsWith(lower, ".cs.washington.edu")) {
      Result<uint32_t> address = hns->ResolveHostAddress(kContextBind, host.name);
      ASSERT_TRUE(address.ok()) << host.name << ": " << address.status();
      EXPECT_EQ(*address, host.address) << host.name;
    }
  }
  // ...and the Xerox machines through the Clearinghouse.
  for (const char* name : {kChServerHost, kXeroxServerHost}) {
    Result<uint32_t> address = hns->ResolveHostAddress(kContextCh, name);
    ASSERT_TRUE(address.ok()) << name << ": " << address.status();
    EXPECT_EQ(*address, bed.world().network().GetHost(name).value().address);
  }
}

TEST(TestbedTest, DisablingRemoteServersStillSupportsLinkedClients) {
  TestbedOptions options;
  options.install_remote_servers = false;
  Testbed bed(options);
  EXPECT_FALSE(bed.world().HasService(kHnsServerHost, kHnsServerPort));
  ClientSetup client = bed.MakeClient(Arrangement::kAllLinked);
  WireValue no_args = WireValue::OfRecord({});
  HnsName name = HnsName::Parse("BIND!fiji.cs.washington.edu").value();
  EXPECT_TRUE(client.session->Query(name, kQueryClassHostAddress, no_args).ok());
}

}  // namespace
}  // namespace hcs
